// Reproduces Figures 1 and 2: the 3-node motivating example where pure
// data parallelism finishes in 15.6 s on 4 processors while mixed
// functional+data parallelism finishes in 14.3 s.
#include <iostream>

#include "bench_util.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/table.hpp"

int main() {
  using namespace paradigm;
  bench::banner("Motivating example: naive vs mixed parallelism",
                "Figures 1 and 2 (15.6 s vs 14.3 s on 4 processors)");

  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});

  // Processing cost curves of the three nodes (Figure 1's plots).
  AsciiTable curves("Processing costs t(p) of the example nodes (seconds)");
  curves.set_header({"node", "p=1", "p=2", "p=3", "p=4"});
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    std::vector<std::string> row{node.name};
    for (double p = 1.0; p <= 4.0; p += 1.0) {
      row.push_back(AsciiTable::num(model.processing_cost(node.id, p), 3));
    }
    curves.add_row(std::move(row));
  }
  std::cout << curves.render() << "\n";

  // Scheme 1 (Figure 2 left): every node on all 4 processors.
  const sched::Schedule naive = sched::spmd_schedule(model, 4);
  // Scheme 2 (Figure 2 right): N1 on 4, then N2 || N3 on 2 each.
  std::vector<std::uint64_t> mixed_alloc(graph.node_count(), 1);
  mixed_alloc[0] = 4;
  mixed_alloc[1] = 2;
  mixed_alloc[2] = 2;
  const sched::Schedule mixed = sched::list_schedule(model, mixed_alloc, 4);

  // And what the full pipeline (convex allocation + PSA) finds on its
  // own.
  const solver::AllocationResult convex =
      solver::ConvexAllocator{}.allocate(model, 4.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, convex.allocation, 4);

  AsciiTable table("Finish times on 4 processors");
  table.set_header({"scheme", "finish (s)", "paper (s)"});
  table.add_row({"naive: pure data parallelism (Fig 2a)",
                 AsciiTable::num(naive.makespan(), 3), "15.6"});
  table.add_row({"mixed: N1 on 4, N2||N3 on 2 (Fig 2b)",
                 AsciiTable::num(mixed.makespan(), 3), "14.3"});
  table.add_row({"convex allocation + PSA (automatic)",
                 AsciiTable::num(psa.finish_time, 3), "-"});
  std::cout << table.render() << "\n";

  std::cout << "Naive schedule:\n" << naive.gantt() << "\n";
  std::cout << "Mixed schedule:\n" << mixed.gantt() << "\n";
  std::cout << "PSA schedule (Phi = " << convex.phi << " s):\n"
            << psa.schedule.gantt() << "\n";
  return 0;
}
