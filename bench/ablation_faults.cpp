// Ablation: fault tolerance. Sweeps the crash time (as a fraction of
// the fault-free makespan) and the message drop rate on the Strassen
// and Complex MatMul graphs, reporting the recovered makespan, the
// degradation factor over the fault-free run, how much completed work
// the rescheduler salvaged, and whether the recovered numerics still
// verify against the sequential reference.
#include <cmath>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codegen/mpmd.hpp"
#include "core/recovery.hpp"
#include "sim/faults.hpp"
#include "support/table.hpp"

namespace {

using namespace paradigm;

struct Case {
  std::string name;
  mdg::Mdg graph;
  std::function<bool(const core::FaultToleranceReport&)> verify;
};

bool close(const Matrix& got, const Matrix& want) {
  return got.max_abs_diff(want) < 1e-9;
}

}  // namespace

int main() {
  using namespace paradigm;
  bench::banner("Fault-tolerance ablation",
                "crash-time x drop-rate sweep with residual rescheduling "
                "(robustness extension; not in the paper)");

  const std::size_t n = 32;
  const std::uint64_t p = 8;
  const auto strassen_ref = core::strassen_reference(n);
  const auto complex_ref = core::complex_matmul_reference(n);
  const std::size_t h = n / 2;

  std::vector<Case> cases;
  cases.push_back(Case{
      "strassen", core::strassen_mdg(n),
      [&](const core::FaultToleranceReport& r) {
        const sim::Simulator& s = *r.simulator;
        return close(s.assemble_array("C11", h, h, r.array_ranks("C11")),
                     strassen_ref.c11) &&
               close(s.assemble_array("C12", h, h, r.array_ranks("C12")),
                     strassen_ref.c12) &&
               close(s.assemble_array("C21", h, h, r.array_ranks("C21")),
                     strassen_ref.c21) &&
               close(s.assemble_array("C22", h, h, r.array_ranks("C22")),
                     strassen_ref.c22);
      }});
  cases.push_back(Case{
      "complex", core::complex_matmul_mdg(n),
      [&](const core::FaultToleranceReport& r) {
        const sim::Simulator& s = *r.simulator;
        return close(s.assemble_array("Cr", n, n, r.array_ranks("Cr")),
                     complex_ref.cr) &&
               close(s.assemble_array("Ci", n, n, r.array_ranks("Ci")),
                     complex_ref.ci);
      }});

  AsciiTable table("Crash rank 1; retries bounded at 10; seed 0x1994");
  table.set_header({"program", "crash frac", "drop", "fault-free (s)",
                    "faulty (s)", "overhead", "salvaged", "rerun",
                    "verified"});

  AsciiTable mc_table(
      "Monte-Carlo drop sweep: crash frac 0.5, drop 0.05, 8 plan seeds");
  mc_table.set_header({"program", "recovered", "mean overhead",
                       "max overhead", "retransmissions (total)"});

  for (const Case& c : cases) {
    core::PipelineConfig config = bench::standard_pipeline(p);
    config.machine.noise_sigma = 0.0;  // isolate the fault overhead
    const core::Compiler compiler(config);
    const core::PipelineReport report = compiler.compile_and_run(c.graph);
    const cost::CostModel model(c.graph, report.fitted_machine,
                                report.kernel_table);
    const double fault_free = report.mpmd.simulated;

    // One task per (crash fraction, drop rate) grid cell; the faulty
    // executions are independent simulations, so they run concurrently
    // on the thread pool and the rows commit in grid order.
    struct Cell {
      double crash_frac = 0.0;
      double drop = 0.0;
    };
    std::vector<Cell> grid;
    for (const double crash_frac : {0.2, 0.5, 0.8}) {
      for (const double drop : {0.0, 0.05, 0.2}) {
        grid.push_back(Cell{crash_frac, drop});
      }
    }
    const auto base_plan = [&](double crash_frac, double drop) {
      sim::FaultPlan plan;
      plan.seed = 0x1994;
      plan.crashes.push_back(sim::CrashFault{1, crash_frac * fault_free});
      plan.drop_probability = drop;
      plan.max_retries = 10;
      // Scale failure detection to the job so the sweep shows the
      // cost of the lost work, not a fixed timeout constant.
      plan.recv_timeout = 0.25 * fault_free;
      return plan;
    };
    const std::vector<core::FaultToleranceReport> reports =
        parallel_map<core::FaultToleranceReport>(
            grid.size(), [&](std::size_t i) {
              return core::run_with_faults(
                  c.graph, model, report.psa->schedule, config.machine,
                  base_plan(grid[i].crash_frac, grid[i].drop), fault_free);
            });

    for (std::size_t i = 0; i < grid.size(); ++i) {
      const core::FaultToleranceReport& ft = reports[i];
      std::string salvaged = "-";
      std::string rerun = "-";
      std::string verified = "n/a";
      if (ft.recovered) {
        salvaged = std::to_string(ft.degradation.salvaged_nodes);
        rerun = std::to_string(ft.degradation.rerun_nodes);
        verified = c.verify(ft) ? "OK" : "FAIL";
      } else if (!ft.crashed && !ft.faulty.aborted) {
        verified = "no crash";
      }
      table.add_row({c.name, AsciiTable::num(grid[i].crash_frac, 1),
                     AsciiTable::num(grid[i].drop, 2),
                     AsciiTable::num(fault_free, 4),
                     AsciiTable::num(ft.final_makespan(), 4),
                     AsciiTable::num(ft.final_makespan() / fault_free, 2),
                     salvaged, rerun, verified});
    }

    // Monte-Carlo sweep over independent fault-plan seeds (the same
    // crash, fresh drop/duplicate draws per seed) via core::sweep_faults.
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < 8; ++s) seeds.push_back(0x1994 + s);
    const core::FaultSweepResult sweep = core::sweep_faults(
        c.graph, model, report.psa->schedule, config.machine,
        base_plan(0.5, 0.05), seeds, fault_free);
    std::size_t retrans = 0;
    for (const core::FaultSweepCell& cell : sweep.cells) {
      retrans += cell.retransmissions;
    }
    mc_table.add_row({c.name,
                      std::to_string(sweep.recovered_count()) + "/" +
                          std::to_string(sweep.cells.size()),
                      AsciiTable::num(sweep.mean_overhead(), 2),
                      AsciiTable::num(sweep.max_overhead(), 2),
                      std::to_string(retrans)});
  }
  std::cout << table.render() << "\n";
  std::cout << mc_table.render() << "\n";
  std::cout << "Later crashes salvage more completed nodes and leave less "
               "residual work, but the whole recovery runs on half the "
               "processors (largest power of two among the survivors), so "
               "the overhead factor stays well-bounded rather than "
               "doubling. Message drops add retransmission latency before "
               "the crash but never change the recovered numerics.\n";
  return 0;
}
