// Reproduces Figure 8: speedup and efficiency of the SPMD (pure data
// parallel) and MPMD (mixed functional + data parallel) versions of the
// two test programs on 16/32/64-processor systems.
#include <iostream>

#include "bench_util.hpp"
#include "support/ascii_plot.hpp"
#include "support/table.hpp"

namespace {

struct Row {
  std::uint64_t p;
  double spmd_speedup;
  double mpmd_speedup;
  double spmd_eff;
  double mpmd_eff;
};

void run_program(const paradigm::mdg::Mdg& graph, const std::string& name) {
  using namespace paradigm;
  std::vector<Row> rows;
  for (const std::uint64_t p : {16ull, 32ull, 64ull}) {
    const core::Compiler compiler(bench::standard_pipeline(p));
    const core::PipelineReport report = compiler.compile_and_run(graph);
    rows.push_back(Row{p, report.spmd_speedup(), report.mpmd_speedup(),
                       report.spmd_efficiency(),
                       report.mpmd_efficiency()});
  }

  AsciiTable table(name + ": speedup and efficiency vs system size");
  table.set_header({"p", "SPMD speedup", "MPMD speedup", "SPMD eff",
                    "MPMD eff", "MPMD/SPMD"});
  PlotSeries spmd{"SPMD speedup", {}, {}};
  PlotSeries mpmd{"MPMD speedup", {}, {}};
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.p),
                   AsciiTable::num(r.spmd_speedup, 2),
                   AsciiTable::num(r.mpmd_speedup, 2),
                   AsciiTable::num(r.spmd_eff, 3),
                   AsciiTable::num(r.mpmd_eff, 3),
                   AsciiTable::num(r.mpmd_speedup / r.spmd_speedup, 2)});
    spmd.xs.push_back(static_cast<double>(r.p));
    spmd.ys.push_back(r.spmd_speedup);
    mpmd.xs.push_back(static_cast<double>(r.p));
    mpmd.ys.push_back(r.mpmd_speedup);
  }
  std::cout << table.render();
  AsciiPlot plot(name + " speedups", "processors", "speedup");
  plot.set_x_log2(true);
  plot.set_y_from_zero(true);
  plot.add_series(std::move(spmd));
  plot.add_series(std::move(mpmd));
  std::cout << plot.render() << "\n";

  const bool gap_grows =
      rows.back().mpmd_speedup / rows.back().spmd_speedup >
      rows.front().mpmd_speedup / rows.front().spmd_speedup;
  std::cout << "Paper shape check — MPMD advantage grows with system size: "
            << (gap_grows ? "YES" : "NO") << "\n\n";
}

}  // namespace

int main() {
  using namespace paradigm;
  bench::banner("SPMD vs MPMD speedups and efficiencies",
                "Figure 8 (16/32/64 processors)");
  run_program(core::complex_matmul_mdg(64),
              "Complex Matrix Multiply (64x64)");
  run_program(core::strassen_mdg(128), "Strassen Matrix Multiply (128x128)");
  return 0;
}
