// Ablation: measurement noise. The paper's training-sets calibration
// and its timing measurements both ride on noisy hardware; this bench
// repeats the headline comparison (Complex MatMul, p = 64) over several
// noise seeds and intensities to show the MPMD > SPMD conclusion is
// robust and how prediction accuracy degrades with noise.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace paradigm;
  bench::banner("Noise-robustness ablation",
                "Complex MatMul 64x64 at p = 64 across noise levels/seeds");

  const mdg::Mdg graph = core::complex_matmul_mdg(64);
  AsciiTable table("Across 5 seeds per noise level");
  table.set_header({"noise sigma", "MPMD speedup (mean +/- sd)",
                    "SPMD speedup (mean +/- sd)", "pred/actual (mean)",
                    "MPMD wins"});

  // One task per (sigma, seed) grid cell; results committed in grid
  // order, so the table is identical for any PARADIGM_THREADS.
  struct Cell {
    double sigma = 0.0;
    std::size_t seed = 0;
  };
  struct CellResult {
    double mpmd = 0.0;
    double spmd = 0.0;
    double accuracy = 0.0;
    bool win = false;
  };
  std::vector<Cell> grid;
  for (const double sigma : {0.0, 0.02, 0.05, 0.10}) {
    const std::size_t seeds = sigma == 0.0 ? 1 : 5;
    for (std::size_t seed = 0; seed < seeds; ++seed) {
      grid.push_back(Cell{sigma, seed});
    }
  }
  const std::vector<CellResult> results = parallel_map<CellResult>(
      grid.size(), [&](std::size_t i) {
        core::PipelineConfig config = bench::standard_pipeline(64);
        config.machine.noise_sigma = grid[i].sigma;
        config.machine.noise_seed = 0x1994 + grid[i].seed * 1117;
        const core::Compiler compiler(config);
        const core::PipelineReport report = compiler.compile_and_run(graph);
        return CellResult{report.mpmd_speedup(), report.spmd_speedup(),
                          report.mpmd.predicted / report.mpmd.simulated,
                          report.mpmd_speedup() > report.spmd_speedup()};
      });

  std::size_t at = 0;
  for (const double sigma : {0.0, 0.02, 0.05, 0.10}) {
    std::vector<double> mpmd;
    std::vector<double> spmd;
    std::vector<double> accuracy;
    std::size_t wins = 0;
    const std::size_t seeds = sigma == 0.0 ? 1 : 5;
    for (std::size_t seed = 0; seed < seeds; ++seed, ++at) {
      mpmd.push_back(results[at].mpmd);
      spmd.push_back(results[at].spmd);
      accuracy.push_back(results[at].accuracy);
      if (results[at].win) ++wins;
    }
    table.add_row(
        {AsciiTable::num(sigma, 2),
         AsciiTable::num(mean(mpmd), 2) + " +/- " +
             AsciiTable::num(stddev(mpmd), 2),
         AsciiTable::num(mean(spmd), 2) + " +/- " +
             AsciiTable::num(stddev(spmd), 2),
         AsciiTable::num(mean(accuracy), 3),
         std::to_string(wins) + "/" + std::to_string(seeds)});
  }
  std::cout << table.render() << "\n";
  std::cout << "The MPMD advantage survives substantial measurement "
               "noise; prediction accuracy degrades gracefully because "
               "calibration averages over repetitions while execution "
               "sees fresh noise.\n";
  return 0;
}
