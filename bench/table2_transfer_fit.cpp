// Reproduces Table 2: fitted data transfer cost parameters
// (t_ss, t_ps, t_sr, t_pr, t_n) from transfer micro-benchmarks on the
// simulated machine — including the CM-5 artifact that the fitted
// network cost per byte comes out ~0 because payloads move at receive
// time.
#include <iostream>

#include "bench_util.hpp"
#include "calibrate/training.hpp"
#include "support/table.hpp"

int main() {
  using namespace paradigm;
  bench::banner("Data transfer cost calibration",
                "Table 2: t_ss, t_ps, t_sr, t_pr, t_n");

  const sim::MachineConfig machine = bench::standard_machine();
  calibrate::CalibrationConfig config;
  config.repetitions = 3;
  const calibrate::TransferFit fit =
      calibrate::calibrate_transfers(machine, config);

  AsciiTable table("Fitted message parameters");
  table.set_header({"parameter", "fitted", "paper (CM-5)", "unit"});
  table.add_row({"t_ss (send startup)",
                 AsciiTable::num(fit.params.t_ss * 1e6, 2), "777.56",
                 "uS"});
  table.add_row({"t_ps (send per byte)",
                 AsciiTable::num(fit.params.t_ps * 1e9, 2), "486.98",
                 "nS"});
  table.add_row({"t_sr (recv startup)",
                 AsciiTable::num(fit.params.t_sr * 1e6, 2), "465.58",
                 "uS"});
  table.add_row({"t_pr (recv per byte)",
                 AsciiTable::num(fit.params.t_pr * 1e9, 2), "426.25",
                 "nS"});
  table.add_row({"t_n  (network per byte)",
                 AsciiTable::num(fit.params.t_n * 1e9, 4), "0", "nS"});
  std::cout << table.render() << "\n";

  std::cout << "fit quality: send R^2 = " << fit.send_fit.r_squared
            << ", recv R^2 = " << fit.recv_fit.r_squared << ", samples = "
            << fit.samples.size() << "\n";
  std::cout << "CM-5 receive-pull artifact reproduced (t_n ~ 0): "
            << (fit.params.t_n < 1e-10 ? "YES" : "NO") << "\n";
  return 0;
}
