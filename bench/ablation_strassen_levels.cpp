// Ablation: Strassen recursion depth. More levels expose more
// functional parallelism (7^L independent multiplies) but shrink each
// base block, shifting the computation/communication balance. This
// bench runs 1 and 2 levels of the 128x128 multiply through the full
// pipeline at 16/64 processors.
#include <iostream>

#include "bench_util.hpp"
#include "core/strassen_multi.hpp"
#include "support/table.hpp"

int main() {
  using namespace paradigm;
  bench::banner("Strassen recursion-depth ablation",
                "1 vs 2 levels of the 128x128 multiply");

  AsciiTable table("Full pipeline by recursion depth");
  table.set_header({"levels", "base mults", "MDG nodes", "p", "Phi (s)",
                    "T_psa (s)", "MPMD sim (s)", "MPMD speedup"});
  for (const unsigned levels : {1u, 2u}) {
    const core::StrassenProgram program =
        core::strassen_program(128, levels);
    for (const std::uint64_t p : {16ull, 64ull}) {
      const core::Compiler compiler(bench::standard_pipeline(p));
      const core::PipelineReport report =
          compiler.compile_and_run(program.graph);
      table.add_row({std::to_string(levels),
                     std::to_string(program.multiply_count()),
                     std::to_string(program.graph.node_count()),
                     std::to_string(p), AsciiTable::num(report.phi(), 4),
                     AsciiTable::num(report.t_psa(), 4),
                     AsciiTable::num(report.mpmd.simulated, 4),
                     AsciiTable::num(report.mpmd_speedup(), 2)});
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "Deeper recursion trades arithmetic volume (7/8 per level) "
               "and functional width against smaller, less efficient base "
               "blocks and more redistribution.\n";
  return 0;
}
