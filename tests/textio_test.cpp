// Tests for the textual MDG format: parsing, error diagnostics with
// line numbers, round-trip stability (write/parse/write fixed point),
// and semantic equivalence of the round-tripped graph.
#include <gtest/gtest.h>

#include "core/programs.hpp"
#include "mdg/random_mdg.hpp"
#include "mdg/textio.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm::mdg {
namespace {

TEST(TextIo, ParsesMinimalGraph) {
  const Mdg graph = parse_mdg(R"(
# a two-loop pipeline
array X 16 8 tag=5
loop producer init -> X
loop consumer synthetic alpha=0.1 tau=2.0
dep producer consumer X
)");
  EXPECT_EQ(graph.node_count(), 4u);  // 2 loops + START/STOP
  EXPECT_EQ(graph.array("X").rows, 16u);
  EXPECT_EQ(graph.array("X").init_tag, 5u);
  const NodeId consumer = graph.producer_of("X") == 0 ? 1 : 0;
  EXPECT_EQ(graph.node(consumer).loop.synth_tau, 2.0);
}

TEST(TextIo, ParsesBinaryOpsAndLayouts) {
  const Mdg graph = parse_mdg(R"(
array A 8 8
array B 8 8
array C 8 8
loop ia init -> A
loop ib init -> B
loop mc mul A B -> C layout=col
dep ia mc A
dep ib mc B
)");
  const auto& mc = graph.node(graph.producer_of("C"));
  EXPECT_EQ(mc.loop.op, LoopOp::kMul);
  EXPECT_EQ(mc.loop.layout, Layout::kCol);
  // row-layout producers into a col-layout consumer: 2D transfers.
  for (const auto& edge : graph.edges()) {
    for (const auto& t : edge.transfers) {
      if (!t.array.empty()) {
        EXPECT_EQ(t.kind, TransferKind::k2D);
      }
    }
  }
}

TEST(TextIo, ParsesSyntheticDeps) {
  const Mdg graph = parse_mdg(R"(
loop a synthetic alpha=0.2 tau=1.0
loop b synthetic alpha=0.1 tau=0.5
loop c synthetic alpha=0.1 tau=0.5
dep a b bytes=4096
dep a c bytes=512 kind=2d
dep b c
)");
  std::size_t one_d = 0;
  std::size_t two_d = 0;
  std::size_t control = 0;
  for (const auto& edge : graph.edges()) {
    const auto& src = graph.node(edge.src);
    const auto& dst = graph.node(edge.dst);
    if (src.kind != NodeKind::kLoop || dst.kind != NodeKind::kLoop) {
      continue;
    }
    if (edge.transfers.empty()) {
      ++control;
    } else if (edge.transfers[0].kind == TransferKind::k1D) {
      ++one_d;
    } else {
      ++two_d;
    }
  }
  EXPECT_EQ(one_d, 1u);
  EXPECT_EQ(two_d, 1u);
  EXPECT_EQ(control, 1u);
}

struct BadInput {
  const char* text;
  const char* reason;
};

class TextIoErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(TextIoErrors, RejectsWithLineDiagnostic) {
  try {
    parse_mdg(GetParam().text);
    FAIL() << "expected parse failure: " << GetParam().reason;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("mdg text line"),
              std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TextIoErrors,
    ::testing::Values(
        BadInput{"frobnicate x", "unknown directive"},
        BadInput{"array X 8", "missing cols"},
        BadInput{"array X 8 8 color=red", "unknown attribute"},
        BadInput{"loop a fly -> X", "unknown op"},
        BadInput{"array X 8 8\nloop a init X", "missing arrow"},
        BadInput{"loop a synthetic alpha=0.1", "missing tau"},
        BadInput{"loop a synthetic alpha=zz tau=1", "bad number"},
        BadInput{"array X 8 8\nloop a init -> X layout=diag",
                 "bad layout"},
        BadInput{"loop a synthetic alpha=0.1 tau=1\ndep a b", "unknown dst"},
        BadInput{"array X 8 8\nloop a init -> X\n"
                 "loop b synthetic alpha=0.1 tau=1\ndep a b X bytes=8",
                 "arrays and bytes together"},
        BadInput{"loop a synthetic alpha=0.1 tau=1\n"
                 "loop a synthetic alpha=0.1 tau=1",
                 "duplicate loop"}));

TEST(TextIo, WriteParseWriteIsFixedPoint) {
  for (const Mdg& graph :
       {core::complex_matmul_mdg(32), core::strassen_mdg(16),
        core::complex_matmul_mdg_mixed_layout(16)}) {
    const std::string once = write_mdg(graph);
    const Mdg reparsed = parse_mdg(once);
    EXPECT_EQ(write_mdg(reparsed), once);
  }
}

TEST(TextIo, RoundTripPreservesSemantics) {
  const Mdg original = core::complex_matmul_mdg(32);
  const Mdg round = parse_mdg(write_mdg(original));
  EXPECT_EQ(round.node_count(), original.node_count());
  EXPECT_EQ(round.edge_count(), original.edge_count());
  EXPECT_EQ(round.arrays().size(), original.arrays().size());
  // Total transfer bytes preserved.
  std::size_t bytes_a = 0;
  std::size_t bytes_b = 0;
  for (const auto& e : original.edges()) bytes_a += e.total_bytes();
  for (const auto& e : round.edges()) bytes_b += e.total_bytes();
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(TextIo, RoundTripRandomSyntheticGraphs) {
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    const Mdg graph = random_mdg(rng);
    const std::string text = write_mdg(graph);
    const Mdg round = parse_mdg(text);
    EXPECT_EQ(round.node_count(), graph.node_count());
    EXPECT_EQ(write_mdg(round), text);
  }
}

TEST(TextIo, ProcessorCapsRoundTrip) {
  const Mdg graph = parse_mdg(R"(
array X 8 8
loop a init -> X cap=4
loop b synthetic alpha=0.1 tau=1.0 cap=6
dep a b X
)");
  EXPECT_EQ(graph.node(graph.producer_of("X")).loop.max_processors, 4u);
  const std::string text = write_mdg(graph);
  EXPECT_NE(text.find("cap=4"), std::string::npos);
  EXPECT_NE(text.find("cap=6"), std::string::npos);
  const Mdg round = parse_mdg(text);
  EXPECT_EQ(write_mdg(round), text);
}

TEST(TextIo, WriterRequiresFinalizedGraph) {
  Mdg graph;
  graph.add_synthetic("a", 0.1, 1.0);
  EXPECT_THROW(write_mdg(graph), Error);
}

}  // namespace
}  // namespace paradigm::mdg
