// Golden-file tests pinning the exact exported bytes of the
// observability layer for two reference pipelines (the paper's Figure 1
// example and Complex Matrix Multiply). Because metrics and spans are
// deterministic by construction (logical clocks, integer instruments,
// canonical export order — DESIGN §9), the goldens must match
// byte-for-byte on every run and under any PARADIGM_THREADS setting;
// regenerate deliberately with PARADIGM_UPDATE_GOLDENS=1 after an
// intentional instrumentation change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "viz/chrome_trace.hpp"

namespace paradigm {
namespace {

bool update_goldens() {
  const char* env = std::getenv("PARADIGM_UPDATE_GOLDENS");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(PARADIGM_GOLDEN_DIR) + "/" + name;
  if (update_goldens()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — regenerate with PARADIGM_UPDATE_GOLDENS=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "golden " << name << " drifted; if the instrumentation change "
      << "is intentional, regenerate with PARADIGM_UPDATE_GOLDENS=1";
}

struct Captured {
  std::string metrics;
  std::string trace;
};

/// Runs the full compiler pipeline with observability in logical mode
/// and captures the two export formats the goldens pin.
Captured run_pipeline(const mdg::Mdg& graph, std::uint64_t p,
                      std::size_t starts) {
  obs::reset_all();
  obs::set_mode(obs::Mode::kLogical);
  core::PipelineConfig config;
  config.processors = p;
  config.machine.size = static_cast<std::uint32_t>(p);
  config.machine.noise_sigma = 0.0;
  config.calibration.repetitions = 1;
  config.solver.num_starts = starts;
  const core::Compiler compiler(config);
  compiler.compile_and_run(graph);
  Captured captured{obs::metrics_json(),
                    viz::chrome_trace_json(obs::Tracer::global())};
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();
  return captured;
}

TEST(ObsGolden, Figure1PipelineMetricsAndTrace) {
  const Captured c = run_pipeline(core::figure1_example(), 4, 1);
  check_golden("figure1_p4.metrics.json", c.metrics);
  check_golden("figure1_p4.trace.json", c.trace);
}

// Multi-start descent so the goldens also cover metrics recorded from
// inside thread-pool tasks (per-start histograms, per-start span
// tracks) — the bytes must still be thread-count invariant.
TEST(ObsGolden, ComplexMatmulPipelineMetricsAndTrace) {
  const Captured c = run_pipeline(core::complex_matmul_mdg(16), 8, 2);
  check_golden("complex_matmul_n16_p8.metrics.json", c.metrics);
  check_golden("complex_matmul_n16_p8.trace.json", c.trace);
}

}  // namespace
}  // namespace paradigm
