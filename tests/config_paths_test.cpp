// Coverage for configuration variants and error paths: PSA with
// rounding/bounding disabled, custom solver configurations, cost-model
// misuse diagnostics, and schedule accessor errors.
#include <gtest/gtest.h>

#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm {
namespace {

cost::CostModel synthetic_model(const mdg::Mdg& graph) {
  return cost::CostModel(graph, cost::MachineParams{},
                         cost::KernelCostTable{});
}

// ---- PSA config variants -----------------------------------------------------

TEST(PsaConfigPaths, RoundingDisabledAcceptsPowerOfTwoInput) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  std::vector<double> alloc(graph.node_count(), 2.0);
  sched::PsaConfig config;
  config.apply_rounding = false;
  const sched::PsaResult result =
      sched::prioritized_schedule(model, alloc, 8, config);
  result.schedule.validate(model);
  for (const auto& a : result.allocation) EXPECT_EQ(a, 2u);
}

TEST(PsaConfigPaths, RoundingDisabledRejectsNonPowerOfTwo) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const std::vector<double> alloc(graph.node_count(), 3.0);
  sched::PsaConfig config;
  config.apply_rounding = false;
  EXPECT_THROW(sched::prioritized_schedule(model, alloc, 8, config),
               Error);
}

TEST(PsaConfigPaths, BoundingDisabledKeepsFullAllocations) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const std::vector<double> alloc(graph.node_count(), 16.0);
  sched::PsaConfig config;
  config.apply_bounding = false;
  const sched::PsaResult result =
      sched::prioritized_schedule(model, alloc, 16, config);
  EXPECT_EQ(result.pb, 16u);  // no Corollary-1 clamp
  // Corollary 1 would have clamped to 8 at p = 16.
  bool any_full = false;
  for (const auto& a : result.allocation) any_full |= (a == 16u);
  EXPECT_TRUE(any_full);
}

TEST(PsaConfigPaths, InvalidPbOverrideRejected) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const std::vector<double> alloc(graph.node_count(), 1.0);
  sched::PsaConfig config;
  config.pb_override = 3;  // not a power of two
  EXPECT_THROW(sched::prioritized_schedule(model, alloc, 8, config),
               Error);
  config.pb_override = 32;  // larger than p
  EXPECT_THROW(sched::prioritized_schedule(model, alloc, 8, config),
               Error);
}

// ---- solver config variants ----------------------------------------------------

TEST(SolverConfigPaths, FewerContinuationRoundsIsNoBetter) {
  Rng rng(99);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  solver::ConvexAllocatorConfig coarse;
  coarse.continuation_rounds = 1;
  coarse.max_inner_iterations = 40;
  const double phi_coarse =
      solver::ConvexAllocator(coarse).allocate(model, 16.0).phi;
  const double phi_full = solver::ConvexAllocator{}.allocate(model, 16.0).phi;
  EXPECT_GE(phi_coarse, phi_full * 0.999);
}

TEST(SolverConfigPaths, IterationBudgetRespected) {
  Rng rng(7);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  solver::ConvexAllocatorConfig tiny;
  tiny.continuation_rounds = 2;
  tiny.max_inner_iterations = 5;
  const auto result = solver::ConvexAllocator(tiny).allocate(model, 16.0);
  EXPECT_LE(result.iterations, 2u * 5u);
}

// ---- cost model misuse -----------------------------------------------------------

TEST(CostModelErrors, AllocationSizeMismatchDiagnosed) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const std::vector<double> wrong(graph.node_count() - 1, 2.0);
  EXPECT_THROW(model.node_weight(0, wrong), Error);
}

TEST(CostModelErrors, SubUnitAllocationDiagnosed) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  EXPECT_THROW(model.processing_cost(0, 0.5), Error);
}

TEST(CostModelErrors, UnfinalizedGraphRejected) {
  mdg::Mdg graph;
  graph.add_synthetic("a", 0.1, 1.0);
  EXPECT_THROW(cost::CostModel(graph, cost::MachineParams{},
                               cost::KernelCostTable{}),
               Error);
}

// ---- schedule accessor errors ------------------------------------------------------

TEST(ScheduleErrors, MakespanBeforeStopPlacedThrows) {
  const mdg::Mdg graph = core::figure1_example();
  sched::Schedule schedule(graph, 4);
  EXPECT_THROW(schedule.makespan(), Error);
}

TEST(ScheduleErrors, PlacementOfUnplacedNodeThrows) {
  const mdg::Mdg graph = core::figure1_example();
  sched::Schedule schedule(graph, 4);
  EXPECT_THROW(schedule.placement(0), Error);
}

TEST(AllocationSummary, MentionsKeyNumbers) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const auto result = solver::ConvexAllocator{}.allocate(model, 4.0);
  const std::string s = result.summary();
  EXPECT_NE(s.find("phi="), std::string::npos);
  EXPECT_NE(s.find("iters"), std::string::npos);
}

}  // namespace
}  // namespace paradigm
