// Robustness and edge-case coverage: multi-array edges end to end,
// fuzzed inputs for all three text parsers (must diagnose, never
// crash), simulator bounds checking, the solver's flat-objective
// gradient-scale regression, and replay of the pathological-MDG
// regression corpus (tests/fuzz_corpus/).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>

#include "calibrate/paramsio.hpp"
#include "codegen/mpmd.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "cost/sanitize.hpp"
#include "frontend/compile.hpp"
#include "mdg/random_mdg.hpp"
#include "mdg/textio.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/degrade.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/vfs.hpp"
#include "support/wal.hpp"
#include "svc/persist.hpp"
#include "svc/service.hpp"

namespace paradigm {
namespace {

// ---- multi-array edges --------------------------------------------------------

/// An edge carrying the same array twice (the consumer reads X as both
/// multiply operands): the cost model must aggregate both transfers
/// (n1 = 2, doubled startup) and codegen must deliver both copies.
struct MultiArrayFixture {
  mdg::Mdg graph;
  mdg::EdgeId edge = 0;

  MultiArrayFixture() {
    graph.add_array("X", 32, 32, 1);
    mdg::LoopSpec init;
    init.op = mdg::LoopOp::kInit;
    init.output = "X";
    const mdg::NodeId a = graph.add_loop("a", init);
    graph.add_array("Z", 32, 32);
    const mdg::NodeId b = graph.add_loop("b", [&] {
      mdg::LoopSpec spec;
      spec.op = mdg::LoopOp::kMul;
      spec.inputs = {"X", "X"};
      spec.output = "Z";
      return spec;
    }());
    // One edge carrying X twice is the multi-array shape the cost model
    // aggregates (n1 = 2).
    edge = graph.add_dependence(a, b, {"X", "X"});
    graph.finalize();
  }
};

TEST(MultiArrayEdge, CostAggregatesStartupsAndBytes) {
  MultiArrayFixture fx;
  cost::KernelCostTable table;
  table.set(cost::KernelKey{mdg::LoopOp::kInit, 32, 32, 0},
            cost::AmdahlParams{0.05, 0.001});
  table.set(cost::KernelKey{mdg::LoopOp::kMul, 32, 32, 32},
            cost::AmdahlParams{0.1, 0.01});
  const cost::CostModel model(fx.graph, cost::MachineParams{}, table);
  const auto& eb = model.edge_bytes(fx.edge);
  EXPECT_DOUBLE_EQ(eb.n1, 2.0);
  EXPECT_DOUBLE_EQ(eb.l1, 2.0 * 32 * 32 * 8);
  // Two 1D arrays: twice the startup of one.
  cost::MachineParams mp;
  const double one_array_startup = (8.0 / 4.0) * mp.t_ss;
  const double send = model.send_cost(fx.edge, 4.0, 8.0);
  EXPECT_NEAR(send,
              2.0 * one_array_startup +
                  (2.0 * 32 * 32 * 8 / 4.0) * mp.t_ps,
              1e-12);
}

TEST(MultiArrayEdge, CodegenDeliversBothCopies) {
  MultiArrayFixture fx;
  cost::KernelCostTable table;
  table.set(cost::KernelKey{mdg::LoopOp::kInit, 32, 32, 0},
            cost::AmdahlParams{0.05, 0.001});
  table.set(cost::KernelKey{mdg::LoopOp::kMul, 32, 32, 32},
            cost::AmdahlParams{0.1, 0.01});
  const cost::CostModel model(fx.graph, cost::MachineParams{}, table);
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 4.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 4);
  const auto generated = codegen::generate_mpmd(fx.graph, psa.schedule);
  sim::MachineConfig mc;
  mc.size = 4;
  mc.noise_sigma = 0.0;
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const Matrix x = Matrix::deterministic(32, 32, 1);
  EXPECT_LT(simulator.assemble_array("Z", 32, 32).max_abs_diff(x * x),
            1e-11);
}

// ---- parser fuzzing -------------------------------------------------------------

std::string random_garbage(Rng& rng, std::size_t length) {
  static const char kChars[] =
      "abcXYZ0189 =+-*()\n\t#_.,;:<>[]{}";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out += kChars[rng.uniform_int(0, sizeof(kChars) - 2)];
  }
  return out;
}

class FuzzSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeded, MdgTextParserNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::string garbage =
        random_garbage(rng, static_cast<std::size_t>(
                                rng.uniform_int(1, 300)));
    try {
      mdg::parse_mdg(garbage);
    } catch (const Error&) {
      // Diagnosed — fine.
    }
  }
}

TEST_P(FuzzSeeded, ExpressionParserNeverCrashes) {
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string garbage =
        random_garbage(rng, static_cast<std::size_t>(
                                rng.uniform_int(1, 300)));
    try {
      frontend::compile_source(garbage);
    } catch (const Error&) {
    }
  }
}

TEST_P(FuzzSeeded, CalibrationParserNeverCrashes) {
  Rng rng(GetParam() + 900);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string garbage =
        random_garbage(rng, static_cast<std::size_t>(
                                rng.uniform_int(1, 200)));
    try {
      calibrate::parse_calibration(garbage);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeded,
                         ::testing::Range<std::uint64_t>(0, 6));

// ---- mutation fuzzing ---------------------------------------------------------
//
// Pure garbage rarely gets past the first token, so it exercises only
// the surface of each parser. Mutating a VALID document reaches the
// deep paths: directives with a corrupted attribute, truncated bodies,
// duplicated sections, numbers with a flipped digit. Every mutated
// input must either parse or raise paradigm::Error — any other
// exception (or a crash/hang) fails the test.

std::string mutate(Rng& rng, std::string s) {
  const std::int64_t ops = rng.uniform_int(1, 4);
  for (std::int64_t k = 0; k < ops; ++k) {
    if (s.empty()) break;
    const auto size = static_cast<std::int64_t>(s.size());
    switch (rng.uniform_int(0, 4)) {
      case 0:  // flip one byte to a random printable character
        s[static_cast<std::size_t>(rng.uniform_int(0, size - 1))] =
            static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete a span
        s.erase(static_cast<std::size_t>(rng.uniform_int(0, size - 1)),
                static_cast<std::size_t>(rng.uniform_int(1, 24)));
        break;
      case 2: {  // duplicate a span in place
        const auto at =
            static_cast<std::size_t>(rng.uniform_int(0, size - 1));
        const std::size_t len =
            std::min(static_cast<std::size_t>(rng.uniform_int(1, 24)),
                     s.size() - at);
        s.insert(at, s.substr(at, len));
        break;
      }
      case 3:  // splice in garbage
        s.insert(static_cast<std::size_t>(rng.uniform_int(0, size)),
                 random_garbage(
                     rng, static_cast<std::size_t>(rng.uniform_int(1, 12))));
        break;
      case 4:  // truncate
        s.resize(static_cast<std::size_t>(rng.uniform_int(0, size - 1)));
        break;
    }
  }
  return s;
}

const std::string& valid_mdg_text() {
  static const std::string text =
      mdg::write_mdg(core::complex_matmul_mdg(16));
  return text;
}

const std::string& valid_mexpr_text() {
  static const std::string text = R"(
input A 16 16 1
input B 16 16 2
S = A + B
P = S * B
output P
)";
  return text;
}

const std::string& valid_params_text() {
  static const std::string text = [] {
    cost::KernelCostTable table;
    table.set(cost::KernelKey{mdg::LoopOp::kMul, 16, 16, 16},
              cost::AmdahlParams{0.05, 0.01});
    table.set(cost::KernelKey{mdg::LoopOp::kAdd, 16, 16, 0},
              cost::AmdahlParams{0.02, 0.001});
    return calibrate::write_calibration(
        calibrate::CalibrationBundle{cost::MachineParams{}, table});
  }();
  return text;
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, MdgTextParserDiagnosesMutations) {
  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string mutated = mutate(rng, valid_mdg_text());
    try {
      mdg::parse_mdg(mutated);
    } catch (const Error&) {
      // Diagnosed with a paradigm::Error — the contract.
    }
  }
}

TEST_P(MutationFuzz, ExpressionParserDiagnosesMutations) {
  Rng rng(GetParam() * 7919 + 131);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string mutated = mutate(rng, valid_mexpr_text());
    try {
      frontend::compile_source(mutated);
    } catch (const Error&) {
    }
  }
}

TEST_P(MutationFuzz, CalibrationParserDiagnosesMutations) {
  Rng rng(GetParam() * 7919 + 1313);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string mutated = mutate(rng, valid_params_text());
    try {
      calibrate::parse_calibration(mutated);
    } catch (const Error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

// ---- frontend Strassen source ------------------------------------------------------

TEST(FrontendPrograms, StrassenSourceMatchesDirectProduct) {
  // The .mexpr Strassen with the same quadrant tags as the hand-built
  // program must reproduce strassen_reference exactly.
  std::string source = R"(
input A11 16 16 201
input A12 16 16 202
input A21 16 16 203
input A22 16 16 204
input B11 16 16 205
input B12 16 16 206
input B21 16 16 207
input B22 16 16 208
M1 = (A11 + A22) * (B11 + B22)
M2 = (A21 + A22) * B11
M3 = A11 * (B12 - B22)
M4 = A22 * (B21 - B11)
M5 = (A11 + A12) * B22
M6 = (A21 - A11) * (B11 + B12)
M7 = (A12 - A22) * (B21 + B22)
C11 = M1 + M4 - M5 + M7
C12 = M3 + M5
C21 = M2 + M4
C22 = M1 - M2 + M3 + M6
output C11
output C22
)";
  const auto env = frontend::interpret_source(source);
  const auto ref = core::strassen_reference(32);  // h = 16 quadrants
  EXPECT_LT(env.at("C11").max_abs_diff(ref.c11), 1e-11);
  EXPECT_LT(env.at("C22").max_abs_diff(ref.c22), 1e-11);
}

// ---- simulator bounds ---------------------------------------------------------------

TEST(SimulatorBounds, ProgramWiderThanMachineRejected) {
  sim::MachineConfig mc;
  mc.size = 2;
  sim::Simulator simulator(mc);
  EXPECT_THROW(simulator.run(sim::MpmdProgram(4)), Error);
}

TEST(SimulatorBounds, GroupRankOutsideMachineRejected) {
  sim::MachineConfig mc;
  mc.size = 2;
  sim::MpmdProgram program(2);
  sim::GroupKernel kernel;
  kernel.node = 0;
  kernel.op = mdg::LoopOp::kSynthetic;
  kernel.cost_override = 1.0;
  kernel.group = {0, 7};  // rank 7 does not exist
  program.streams[0].push_back(kernel);
  sim::Simulator simulator(mc);
  EXPECT_THROW(simulator.run(program), Error);
}

// ---- solver gradient-scale regression ------------------------------------------
//
// A zero-cost graph makes the smoothed objective identically zero, so
// the old relative gradient normalization divided by ~0 and produced
// NaN steps. The fix floors the scale at 1e-12 (and substitutes the
// floor outright when the objective is non-finite); a flat objective
// must now yield a finite allocation with Phi = 0, not NaN.

TEST(SolverRegression, FlatObjectiveNeverProducesNaN) {
  mdg::Mdg graph;
  std::vector<mdg::NodeId> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(
        graph.add_synthetic("flat" + std::to_string(i), 0.0, 0.0));
  }
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    graph.add_synthetic_dependence(nodes[i], nodes[i + 1], 0);
  }
  graph.finalize();
  // Zero machine parameters too: every cost term vanishes.
  cost::MachineParams zero_machine;
  zero_machine.t_ss = zero_machine.t_ps = zero_machine.t_sr =
      zero_machine.t_pr = zero_machine.t_n = 0.0;
  const cost::CostModel model(graph, zero_machine,
                              cost::KernelCostTable{});
  const auto result = solver::ConvexAllocator{}.allocate(model, 16.0);
  EXPECT_TRUE(result.finite()) << result.summary();
  EXPECT_EQ(result.phi, 0.0);
  for (const double a : result.allocation) {
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_GE(a, 1.0);
    EXPECT_LE(a, 16.0);
  }
}

TEST(SolverRegression, FlatObjectiveStableWithGuardsOff) {
  // The gscale floor is part of the descent arithmetic, not the guard
  // layer: even with finite_guards disabled a flat objective must not
  // poison the iterates.
  mdg::Mdg graph;
  const auto a = graph.add_synthetic("a", 0.0, 0.0);
  const auto b = graph.add_synthetic("b", 0.0, 0.0);
  graph.add_synthetic_dependence(a, b, 0);
  graph.finalize();
  cost::MachineParams zero_machine;
  zero_machine.t_ss = zero_machine.t_ps = zero_machine.t_sr =
      zero_machine.t_pr = zero_machine.t_n = 0.0;
  const cost::CostModel model(graph, zero_machine,
                              cost::KernelCostTable{});
  solver::ConvexAllocatorConfig config;
  config.finite_guards = false;
  const auto result = solver::ConvexAllocator(config).allocate(model, 8.0);
  EXPECT_TRUE(result.finite()) << result.summary();
}

// ---- fuzz-corpus replay ---------------------------------------------------------
//
// Every seed in tests/fuzz_corpus/seeds.txt (one representative per
// pathological shape class plus any seed a past fuzz run flagged) is
// replayed through the full pipeline under the default degradation
// policy. The release contract must hold for each: no throw, finite
// allocation, valid schedule, finite makespan, documented exit code.

std::vector<std::uint64_t> corpus_seeds() {
  std::vector<std::uint64_t> seeds;
  std::ifstream in(std::string(PARADIGM_FUZZ_CORPUS_DIR) + "/seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    if (fields >> seed) seeds.push_back(seed);
  }
  return seeds;
}

TEST(FuzzCorpus, EverySeedHoldsTheReleaseContract) {
  const std::vector<std::uint64_t> seeds = corpus_seeds();
  ASSERT_GE(seeds.size(), 10u) << "corpus file missing or unreadable";

  core::PipelineConfig config;
  config.processors = 8;
  config.machine.size = 8;
  config.machine.noise_sigma = 0.0;
  config.preset_calibration = calibrate::CalibrationBundle{
      cost::MachineParams{}, cost::KernelCostTable{}};
  config.solver.continuation_rounds = 2;
  config.solver.max_inner_iterations = 60;
  config.solver.work_unit_budget = 400;
  const core::Compiler compiler(config);

  for (const std::uint64_t seed : seeds) {
    std::string shape;
    const mdg::Mdg graph = mdg::pathological_mdg(seed, &shape);
    core::PipelineReport report;
    ASSERT_NO_THROW(report = compiler.compile_and_run(graph))
        << "seed " << seed << " (" << shape << ")";
    for (const double p_i : report.allocation.allocation) {
      ASSERT_TRUE(std::isfinite(p_i) && p_i >= 1.0)
          << "seed " << seed << " (" << shape << ") p_i=" << p_i;
    }
    ASSERT_TRUE(report.psa.has_value()) << "seed " << seed;
    EXPECT_TRUE(std::isfinite(report.psa->finish_time) &&
                report.psa->finish_time >= 0.0)
        << "seed " << seed << " (" << shape << ")";
    const auto scan = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{});
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{},
                                scan.needs_repair
                                    ? cost::ParamPolicy::kSanitize
                                    : cost::ParamPolicy::kStrict);
    EXPECT_NO_THROW(report.psa->schedule.validate(model))
        << "seed " << seed;
    const int code = degrade::exit_code(report.degradation);
    EXPECT_TRUE(code == 0 || (code >= 10 && code <= 15))
        << "seed " << seed << " code " << code;
  }
}

TEST(SimulatorBounds, SendOutsideMachineRejected) {
  sim::MachineConfig mc;
  mc.size = 2;
  sim::MpmdProgram program(2);
  program.streams[0].push_back(
      sim::AllocBlock{"X", sim::BlockRect{{0, 2}, {0, 2}}});
  program.streams[0].push_back(
      sim::SendBlock{9, 1, "X", sim::BlockRect{{0, 2}, {0, 2}}});
  sim::Simulator simulator(mc);
  EXPECT_THROW(simulator.run(program), Error);
}

// ---- corrupted-journal corpus ------------------------------------------------
//
// Every seed in tests/fuzz_corpus/wal_seeds.txt drives a deterministic
// bit-flip pass over a completed service journal; recovery from the
// corrupted copy must either fail with a structured Error/UsageError
// or succeed via salvage — and when it succeeds, re-offering the full
// corpus must reproduce the crash-free ledger byte for byte. A raw
// crash, a hang, or a silently divergent ledger is the bug class this
// corpus locks out (DESIGN §12).

namespace fs = std::filesystem;

svc::ServiceConfig wal_fuzz_config() {
  svc::ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 10;
  config.pipeline.solver.continuation_rounds = 1;
  config.default_deadline = 200000;
  config.slots = 2;
  return config;
}

std::vector<svc::JobSpec> wal_fuzz_corpus() {
  std::vector<svc::JobSpec> jobs;
  for (std::size_t i = 0; i < 10; ++i) {
    svc::JobSpec spec;
    spec.id = "f";
    spec.id += std::to_string(i);
    spec.seed = 40 + i;
    spec.nodes = 6 + (i % 3);
    spec.processors = (i == 4) ? 5 : 8;  // One hard failure in the mix.
    spec.arrival = i * 10;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

svc::ServiceReport run_wal_fuzz_service(svc::Persistence* persist) {
  svc::Service service(wal_fuzz_config());
  for (svc::JobSpec& spec : wal_fuzz_corpus()) service.submit(std::move(spec));
  service.drain_at(2000, 100000);
  if (persist != nullptr) service.attach_persistence(persist);
  return service.run();
}

std::vector<std::uint64_t> wal_corpus_seeds() {
  std::vector<std::uint64_t> seeds;
  std::ifstream in(std::string(PARADIGM_FUZZ_CORPUS_DIR) + "/wal_seeds.txt");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t seed = 0;
    if (fields >> seed) seeds.push_back(seed);
  }
  return seeds;
}

TEST(WalFuzzCorpus, BitFlippedJournalsRecoverStructurally) {
  const fs::path root =
      fs::temp_directory_path() / "robustness_wal_fuzz";
  fs::remove_all(root);
  fs::create_directories(root);

  // Crash-free baseline: the ledger every successful salvage must
  // reproduce, and the journal bytes every seed perturbs.
  const std::string expected = run_wal_fuzz_service(nullptr).ledger();
  const fs::path clean_dir = root / "clean";
  {
    svc::PersistConfig pc;
    pc.dir = clean_dir.string();
    pc.snapshot_every = 0;  // Pure journal: every byte is a record byte.
    svc::Persistence persist(pc);
    ASSERT_EQ(run_wal_fuzz_service(&persist).ledger(), expected);
  }
  std::string clean_bytes;
  {
    std::ifstream in(clean_dir / "journal.wal", std::ios::binary);
    clean_bytes.assign((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  ASSERT_GT(clean_bytes.size(), 64u);

  const std::vector<std::uint64_t> seeds = wal_corpus_seeds();
  ASSERT_GE(seeds.size(), 12u) << "wal corpus file missing or unreadable";

  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("wal seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    std::string corrupted = clean_bytes;
    const std::size_t flips = 1 + seed % 3;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t byte = rng() % corrupted.size();
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1u << (rng() % 8)));
    }

    const fs::path dir = root / ("seed-" + std::to_string(seed));
    fs::create_directories(dir);
    {
      std::ofstream out(dir / "journal.wal",
                        std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }

    svc::PersistConfig pc;
    pc.dir = dir.string();
    pc.recover = true;
    pc.snapshot_every = 0;
    try {
      svc::Persistence persist(pc);
      // Salvaged open: the surviving prefix plus the re-offered corpus
      // must land exactly on the crash-free ledger.
      const svc::ServiceReport recovered = run_wal_fuzz_service(&persist);
      EXPECT_EQ(recovered.ledger(), expected);
      std::set<std::string> exec_keys;
      for (const std::string& record :
           wal::read_journal(persist.journal_path()).records) {
        if (record.rfind("exec ", 0) != 0) continue;
        std::istringstream in(record);
        std::string tag, index, attempt;
        in >> tag >> index >> attempt;
        EXPECT_TRUE(exec_keys.insert(index + "/" + attempt).second)
            << "duplicate exec digest after salvage: " << record;
      }
    } catch (const UsageError&) {
      // Structured rejection (e.g. a flipped format-version byte).
    } catch (const Error&) {
      // Structured rejection (e.g. a flipped header magic byte).
    }
    fs::remove_all(dir);
  }
  fs::remove_all(root);
}

// Every corpus seed also drives a deterministic *storage fault* pass
// (DESIGN §14): the seed picks a fault family — clean ENOSPC, a torn
// short write, or a byte-budget device that tears at capacity — and a
// trigger point inside the run. The service must either finish or
// quarantine with a structured StorageError (never crash or hang), and
// recovery on the healed device must reproduce the crash-free ledger
// byte for byte with no duplicated exec digest.
TEST(WalFuzzCorpus, InjectedStorageFaultsQuarantineThenRecover) {
  const fs::path root = fs::temp_directory_path() / "robustness_storage_fuzz";
  fs::remove_all(root);
  fs::create_directories(root);

  const std::string expected = run_wal_fuzz_service(nullptr).ledger();
  const std::vector<std::uint64_t> seeds = wal_corpus_seeds();
  ASSERT_GE(seeds.size(), 12u) << "wal corpus file missing or unreadable";

  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("storage seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    vfs::FaultPlan plan;
    switch (seed % 3) {
      case 0:  // Device full, nothing partial on disk.
        plan.fail_append_after = 5 + static_cast<std::int64_t>(rng() % 60);
        plan.append_fault = vfs::FaultKind::kEnospc;
        plan.short_write_fraction = 0.0;
        break;
      case 1:  // Short write: a torn record tail to salvage.
        plan.fail_append_after = 5 + static_cast<std::int64_t>(rng() % 60);
        plan.append_fault = vfs::FaultKind::kShortWrite;
        break;
      default:  // Byte-budget device: tears wherever the budget lands.
        plan.capacity_bytes = 600 + rng() % 4000;
        break;
    }
    vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);

    const fs::path dir = root / ("seed-" + std::to_string(seed));
    bool quarantined = false;
    {
      svc::PersistConfig pc;
      pc.dir = dir.string();
      pc.snapshot_every = 0;
      pc.fs = &faulty;
      svc::Persistence persist(pc);
      try {
        run_wal_fuzz_service(&persist);
      } catch (const vfs::StorageError& e) {
        quarantined = true;
        EXPECT_TRUE(persist.stats().quarantined) << e.what();
      }
    }

    // The device "heals" (space freed / transient EIO gone): recovery
    // through the real backend replays the durable prefix, re-offers
    // the corpus, and must land exactly on the crash-free ledger.
    svc::PersistConfig rc;
    rc.dir = dir.string();
    rc.recover = true;
    rc.snapshot_every = 0;
    svc::Persistence recovered(rc);
    EXPECT_EQ(run_wal_fuzz_service(&recovered).ledger(), expected)
        << (quarantined ? "after quarantine" : "after clean run");
    std::set<std::string> exec_keys;
    for (const std::string& record :
         wal::read_journal(recovered.journal_path()).records) {
      if (record.rfind("exec ", 0) != 0) continue;
      std::istringstream in(record);
      std::string tag, index, attempt;
      in >> tag >> index >> attempt;
      EXPECT_TRUE(exec_keys.insert(index + "/" + attempt).second)
          << "duplicate exec digest after storage-fault recovery: " << record;
    }
    fs::remove_all(dir);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace paradigm
