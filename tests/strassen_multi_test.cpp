// Tests for the multi-level Strassen builder: structural counts,
// numerical correctness of the fully expanded recursion against the
// direct product at one and two levels, and end-to-end execution of a
// ~280-node MDG through the whole pipeline.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/strassen_multi.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"

namespace paradigm::core {
namespace {

cost::KernelCostTable mirror_table(const sim::MachineConfig& mc,
                                   const mdg::Mdg& graph) {
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop ||
        node.loop.op == mdg::LoopOp::kSynthetic) {
      continue;
    }
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (table.contains(key)) continue;
    table.set(key, cost::AmdahlParams{
                       mc.timing_for(key.op).serial_fraction,
                       mc.sequential_seconds(key.op, key.rows, key.cols,
                                             key.inner)});
  }
  return table;
}

cost::MachineParams mirror_params(const sim::MachineConfig& mc) {
  cost::MachineParams mp;
  mp.t_ss = mc.send_startup;
  mp.t_ps = mc.send_per_byte;
  mp.t_sr = mc.recv_startup;
  mp.t_pr = mc.recv_per_byte;
  return mp;
}

Matrix run_and_assemble(const StrassenProgram& program, std::uint64_t p) {
  sim::MachineConfig mc;
  mc.size = static_cast<std::uint32_t>(p);
  mc.noise_sigma = 0.0;
  const cost::CostModel model(program.graph, mirror_params(mc),
                              mirror_table(mc, program.graph));
  const auto alloc = solver::ConvexAllocator{}.allocate(
      model, static_cast<double>(p));
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, p);
  psa.schedule.validate(model);
  const codegen::GeneratedProgram generated =
      codegen::generate_mpmd(program.graph, psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);

  Matrix c(program.n, program.n);
  for (std::size_t r = 0; r < program.grid; ++r) {
    for (std::size_t col = 0; col < program.grid; ++col) {
      c.set_block(r * program.block, col * program.block,
                  simulator.assemble_array(program.c_blocks[r][col],
                                           program.block,
                                           program.block));
    }
  }
  return c;
}

TEST(StrassenMulti, StructureLevel1) {
  const StrassenProgram program = strassen_program(32, 1);
  EXPECT_EQ(program.grid, 2u);
  EXPECT_EQ(program.block, 16u);
  EXPECT_EQ(program.multiply_count(), 7u);
  // 8 inits + 10 pre-adds + 7 muls + 8 combine nodes + START/STOP.
  EXPECT_EQ(program.graph.node_count(), 8u + 10u + 7u + 8u + 2u);
}

TEST(StrassenMulti, StructureLevel2) {
  const StrassenProgram program = strassen_program(32, 2);
  EXPECT_EQ(program.grid, 4u);
  EXPECT_EQ(program.block, 8u);
  EXPECT_EQ(program.multiply_count(), 49u);
  EXPECT_GT(program.graph.node_count(), 200u);
}

TEST(StrassenMulti, InvalidShapesRejected) {
  EXPECT_THROW(strassen_program(30, 2), Error);  // not divisible by 4
  EXPECT_THROW(strassen_program(8, 3), Error);   // base block too small
  EXPECT_THROW(strassen_program(64, 0), Error);
  EXPECT_THROW(strassen_program(1024, 5), Error);
}

TEST(StrassenMulti, Level1MatchesDirectProduct) {
  const StrassenProgram program = strassen_program(16, 1);
  const Matrix c = run_and_assemble(program, 4);
  const Matrix expected = strassen_program_input_a(program) *
                          strassen_program_input_b(program);
  EXPECT_LT(c.max_abs_diff(expected), 1e-11);
}

TEST(StrassenMulti, Level2MatchesDirectProductThroughFullPipeline) {
  const StrassenProgram program = strassen_program(32, 2);
  const Matrix c = run_and_assemble(program, 8);
  const Matrix expected = strassen_program_input_a(program) *
                          strassen_program_input_b(program);
  EXPECT_LT(c.max_abs_diff(expected), 1e-10);
}

TEST(StrassenMulti, InputAssemblyMatchesInitTags) {
  const StrassenProgram program = strassen_program(16, 1);
  const Matrix a = strassen_program_input_a(program);
  // Block (1, 0) of A must equal the deterministic fill of its tag.
  const Matrix blk = a.block(8, 0, 8, 8);
  EXPECT_LT(blk.max_abs_diff(Matrix::deterministic(8, 8, 1000 + 2)),
            1e-15);
}

}  // namespace
}  // namespace paradigm::core
