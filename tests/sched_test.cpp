// Tests for the scheduler: Theorem 1/2/3 factor arithmetic, Corollary 1
// PB selection, the rounding and bounding steps, the PSA list scheduler
// (including the paper's Figure-2 example numbers), schedule validation,
// and property sweeps of the Theorem-3 bound over random graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/bounds.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"
#include "support/pow2.hpp"
#include "support/rng.hpp"

namespace paradigm::sched {
namespace {

cost::CostModel synthetic_model(const mdg::Mdg& graph,
                                cost::MachineParams machine = {}) {
  return cost::CostModel(graph, machine, cost::KernelCostTable{});
}

// ---- Bounds (Section 5) ----------------------------------------------------

TEST(Bounds, Theorem1FactorValues) {
  // PB = p: factor 1 + p; PB = 1: factor 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(theorem1_factor(64, 64), 65.0);
  EXPECT_DOUBLE_EQ(theorem1_factor(64, 1), 2.0);
  EXPECT_NEAR(theorem1_factor(64, 32), 1.0 + 64.0 / 33.0, 1e-12);
}

TEST(Bounds, Theorem2FactorValues) {
  EXPECT_DOUBLE_EQ(theorem2_factor(64, 64), 2.25);
  EXPECT_DOUBLE_EQ(theorem2_factor(64, 32), 9.0);
  EXPECT_DOUBLE_EQ(theorem2_factor(64, 16), 36.0);
}

TEST(Bounds, Theorem3IsProduct) {
  for (const std::uint64_t pb : {1ull, 2ull, 8ull, 64ull}) {
    EXPECT_DOUBLE_EQ(theorem3_factor(64, pb),
                     theorem1_factor(64, pb) * theorem2_factor(64, pb));
  }
}

TEST(Bounds, InvalidArgumentsRejected) {
  EXPECT_THROW(theorem1_factor(8, 0), Error);
  EXPECT_THROW(theorem1_factor(8, 16), Error);
  EXPECT_THROW(optimal_processor_bound(48), Error);
}

TEST(Bounds, Corollary1Selections) {
  // Computed by minimizing expression (18) over powers of two.
  EXPECT_EQ(optimal_processor_bound(1), 1u);
  EXPECT_EQ(optimal_processor_bound(2), 2u);
  EXPECT_EQ(optimal_processor_bound(4), 4u);
  EXPECT_EQ(optimal_processor_bound(8), 8u);
  EXPECT_EQ(optimal_processor_bound(16), 8u);
  EXPECT_EQ(optimal_processor_bound(32), 16u);
  EXPECT_EQ(optimal_processor_bound(64), 32u);
}

TEST(Bounds, Corollary1IsArgmin) {
  for (std::uint64_t p = 1; p <= 256; p *= 2) {
    const std::uint64_t chosen = optimal_processor_bound(p);
    for (std::uint64_t pb = 1; pb <= p; pb *= 2) {
      EXPECT_LE(theorem3_factor(p, chosen), theorem3_factor(p, pb) + 1e-12);
    }
  }
}

// ---- Rounding and bounding steps -------------------------------------------

TEST(Psa, RoundAllocation) {
  const auto rounded = round_allocation(
      std::vector<double>{1.0, 1.4, 1.6, 2.9, 3.1, 5.9, 6.1, 16.0}, 16);
  EXPECT_EQ(rounded,
            (std::vector<std::uint64_t>{1, 1, 2, 2, 4, 4, 8, 16}));
}

TEST(Psa, RoundRejectsOutOfRange) {
  EXPECT_THROW(round_allocation(std::vector<double>{0.5}, 16), Error);
  EXPECT_THROW(round_allocation(std::vector<double>{17.0}, 16), Error);
  EXPECT_THROW(round_allocation(std::vector<double>{2.0}, 12), Error);
}

TEST(Psa, BoundAllocationClamps) {
  const auto bounded =
      bound_allocation(std::vector<std::uint64_t>{1, 4, 8, 16}, 8);
  EXPECT_EQ(bounded, (std::vector<std::uint64_t>{1, 4, 8, 8}));
  EXPECT_THROW(bound_allocation({4}, 6), Error);  // PB not a power of 2
}

// ---- List scheduling on the Figure 1/2 example ------------------------------

TEST(Psa, Figure2NaiveScheduleTakes15point6Seconds) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const Schedule spmd = spmd_schedule(model, 4);
  spmd.validate(model);
  EXPECT_NEAR(spmd.makespan(), 15.6, 1e-6);
}

TEST(Psa, Figure2MixedScheduleTakes14point3Seconds) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  // N1 on 4 processors, N2 and N3 on 2 each (START/STOP on 1).
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const Schedule mixed = list_schedule(model, alloc, 4);
  mixed.validate(model);
  EXPECT_NEAR(mixed.makespan(), 14.3, 1e-6);
  // N2 and N3 run concurrently on disjoint processor pairs.
  const auto& n2 = mixed.placement(1);
  const auto& n3 = mixed.placement(2);
  EXPECT_NEAR(n2.start, n3.start, 1e-9);
  EXPECT_NE(n2.ranks, n3.ranks);
}

TEST(Psa, FullPipelineOnFigure1BeatsNaive) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const solver::AllocationResult alloc =
      solver::ConvexAllocator{}.allocate(model, 4.0);
  PsaConfig config;  // Corollary 1 picks PB = 4 for p = 4.
  const PsaResult result =
      prioritized_schedule(model, alloc.allocation, 4, config);
  result.schedule.validate(model);
  EXPECT_LT(result.finish_time, 15.6);
  EXPECT_GE(result.finish_time, 14.3 - 1e-6);
}

// ---- Schedule object --------------------------------------------------------

TEST(ScheduleTest, PlaceTwiceRejected) {
  const mdg::Mdg graph = core::figure1_example();
  Schedule schedule(graph, 4);
  schedule.place({0, 0.0, 1.0, {0}});
  EXPECT_THROW(schedule.place({0, 1.0, 2.0, {1}}), Error);
}

TEST(ScheduleTest, BadRanksRejected) {
  const mdg::Mdg graph = core::figure1_example();
  Schedule schedule(graph, 4);
  EXPECT_THROW(schedule.place({0, 0.0, 1.0, {0, 0}}), Error);  // dup
  EXPECT_THROW(schedule.place({1, 0.0, 1.0, {7}}), Error);     // range
  EXPECT_THROW(schedule.place({2, 1.0, 0.5, {0}}), Error);     // reversed
}

TEST(ScheduleTest, ValidateCatchesPrecedenceViolation) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  Schedule good = list_schedule(model, alloc, 4);
  good.validate(model);

  // Rebuild with N2 starting before N1 finishes.
  Schedule bad(graph, 4);
  for (const auto& sn : good.placements_in_start_order()) {
    ScheduledNode moved = sn;
    if (graph.node(sn.node).name == "N2") moved.start = 0.0;
    if (graph.node(sn.node).name == "N2") {
      moved.finish = moved.start + sn.duration();
      moved.ranks = {3};
    }
    bad.place(moved);
  }
  EXPECT_THROW(bad.validate(model), Error);
}

TEST(ScheduleTest, ValidateCatchesOversubscription) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  std::vector<double> alloc(graph.node_count(), 1.0);
  Schedule bad(graph, 4);
  // N1 then N2 and N3 overlapping on the same processor.
  const double t1 = model.node_weight(0, alloc);
  const double t2 = model.node_weight(1, alloc);
  const double t3 = model.node_weight(2, alloc);
  bad.place({0, 0.0, t1, {0}});
  bad.place({1, t1, t1 + t2, {0}});
  bad.place({2, t1, t1 + t3, {0}});  // same rank, same time as N2
  bad.place({graph.start(), 0.0, 0.0, {}});
  bad.place({graph.stop(), t1 + t2 + t3, t1 + t2 + t3, {}});
  EXPECT_THROW(bad.validate(model), Error);
}

TEST(ScheduleTest, EfficiencyAndGantt) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const Schedule schedule = list_schedule(model, alloc, 4);
  EXPECT_GT(schedule.efficiency(), 0.5);
  EXPECT_LE(schedule.efficiency(), 1.0 + 1e-12);
  const std::string gantt = schedule.gantt();
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
}

// ---- Property sweeps over random graphs -------------------------------------

class PsaSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsaSeeded, ScheduleAlwaysValid) {
  Rng rng(GetParam());
  const mdg::Mdg graph = mdg::random_mdg(rng);
  cost::MachineParams mp;
  mp.t_n = 1e-9;  // exercise nonzero edge delays
  const cost::CostModel model = synthetic_model(graph, mp);
  const std::uint64_t p = 32;
  const solver::AllocationResult alloc =
      solver::ConvexAllocator{}.allocate(model, static_cast<double>(p));
  const PsaResult result = prioritized_schedule(model, alloc.allocation, p);
  result.schedule.validate(model);
  EXPECT_EQ(result.pb, optimal_processor_bound(p));
  for (const auto& a : result.allocation) {
    EXPECT_LE(a, result.pb);
    EXPECT_TRUE(is_pow2(a));
  }
}

TEST_P(PsaSeeded, Theorem3BoundHolds) {
  Rng rng(GetParam() + 50);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  const std::uint64_t p = 32;
  const solver::AllocationResult alloc =
      solver::ConvexAllocator{}.allocate(model, static_cast<double>(p));
  const PsaResult result = prioritized_schedule(model, alloc.allocation, p);
  const double bound = theorem3_factor(p, result.pb) * alloc.phi;
  EXPECT_LE(result.finish_time, bound)
      << "T_psa " << result.finish_time << " vs bound " << bound;
}

TEST_P(PsaSeeded, MakespanDominatesAreaAndCriticalPathLowerBounds) {
  Rng rng(GetParam() + 150);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  const std::uint64_t p = 16;
  const solver::AllocationResult alloc =
      solver::ConvexAllocator{}.allocate(model, static_cast<double>(p));
  const PsaResult result = prioritized_schedule(model, alloc.allocation, p);
  const auto final_alloc = result.schedule.implied_allocation();
  EXPECT_GE(result.finish_time,
            model.critical_path_time(final_alloc) - 1e-9);
  EXPECT_GE(result.finish_time,
            model.average_finish_time(final_alloc,
                                      static_cast<double>(p)) -
                1e-9);
}

TEST_P(PsaSeeded, SpmdScheduleSerializesLoops) {
  Rng rng(GetParam() + 250);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  const Schedule spmd = spmd_schedule(model, 8);
  spmd.validate(model);
  // Every loop node uses all 8 processors, so no two loops overlap.
  const auto order = spmd.placements_in_start_order();
  double prev_finish = 0.0;
  for (const auto& sn : order) {
    if (graph.node(sn.node).kind != mdg::NodeKind::kLoop) continue;
    EXPECT_EQ(sn.ranks.size(), 8u);
    EXPECT_GE(sn.start, prev_finish - 1e-9);
    prev_finish = sn.finish;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsaSeeded,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Psa, PbOverrideRespected) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const solver::AllocationResult alloc =
      solver::ConvexAllocator{}.allocate(model, 16.0);
  PsaConfig config;
  config.pb_override = 2;
  const PsaResult result =
      prioritized_schedule(model, alloc.allocation, 16, config);
  EXPECT_EQ(result.pb, 2u);
  for (const auto& a : result.allocation) EXPECT_LE(a, 2u);
}

TEST(Psa, NonPowerOfTwoMachineRejected) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const std::vector<double> alloc(graph.node_count(), 1.0);
  EXPECT_THROW(prioritized_schedule(model, alloc, 12), Error);
}

}  // namespace
}  // namespace paradigm::sched
