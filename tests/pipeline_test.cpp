// End-to-end integration tests of the Compiler pipeline on the paper's
// two benchmark programs: allocation/schedule consistency, prediction
// vs simulation, numerical correctness, and the MPMD-beats-SPMD shape
// at larger machine sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "sched/bounds.hpp"
#include "support/error.hpp"

namespace paradigm::core {
namespace {

PipelineConfig small_config(std::uint64_t p, double noise = 0.0) {
  PipelineConfig config;
  config.processors = p;
  config.machine.size = static_cast<std::uint32_t>(p);
  config.machine.noise_sigma = noise;
  config.calibration.repetitions = noise > 0.0 ? 3 : 1;
  return config;
}

TEST(Pipeline, ComplexMatmulEndToEndConsistency) {
  const mdg::Mdg graph = complex_matmul_mdg(32);
  const Compiler compiler(small_config(8));
  const PipelineReport report = compiler.compile_and_run(graph);

  ASSERT_TRUE(report.psa.has_value());
  // Structural consistency.
  EXPECT_EQ(report.processors, 8u);
  EXPECT_EQ(report.psa->pb, sched::optimal_processor_bound(8));
  EXPECT_GT(report.phi(), 0.0);
  EXPECT_GT(report.t_psa(), 0.0);
  // Theorem 3 end-to-end bound.
  EXPECT_LE(report.t_psa(),
            sched::theorem3_factor(8, report.psa->pb) * report.phi());
  // The PSA prediction can dip slightly below Phi only through solver
  // slack; it must not be wildly below.
  EXPECT_GE(report.t_psa(), 0.9 * report.phi());
  // Prediction vs simulation (Figure 9's claim: "fairly close").
  EXPECT_NEAR(report.mpmd.simulated, report.mpmd.predicted,
              0.3 * report.mpmd.predicted);
  EXPECT_NEAR(report.spmd_run.simulated, report.spmd_run.predicted,
              0.3 * report.spmd_run.predicted);
  // Speedups are positive and bounded by p.
  EXPECT_GT(report.mpmd_speedup(), 1.0);
  EXPECT_LE(report.mpmd_speedup(), 8.0);
  EXPECT_GT(report.spmd_speedup(), 1.0);
}

TEST(Pipeline, StrassenEndToEndRunsAndValidates) {
  const mdg::Mdg graph = strassen_mdg(32);
  const Compiler compiler(small_config(8));
  const PipelineReport report = compiler.compile_and_run(graph);
  ASSERT_TRUE(report.psa.has_value());
  EXPECT_GT(report.mpmd.simulated, 0.0);
  EXPECT_GT(report.serial_seconds, report.mpmd.simulated);
  EXPECT_LE(report.t_psa(),
            sched::theorem3_factor(8, report.psa->pb) * report.phi());
}

TEST(Pipeline, MpmdBeatsSpmdOnLargerMachines) {
  // The paper's headline result (Figure 8): mixed task+data parallelism
  // wins over pure data parallelism, especially for larger systems.
  const mdg::Mdg graph = complex_matmul_mdg(64);
  const Compiler compiler(small_config(32));
  const PipelineReport report = compiler.compile_and_run(graph);
  EXPECT_GT(report.mpmd_speedup(), report.spmd_speedup())
      << report.summary();
}

TEST(Pipeline, NoiseDoesNotBreakTheShape) {
  const mdg::Mdg graph = complex_matmul_mdg(32);
  const Compiler compiler(small_config(8, 0.02));
  const PipelineReport report = compiler.compile_and_run(graph);
  EXPECT_GT(report.mpmd_speedup(), 1.0);
  EXPECT_NEAR(report.mpmd.simulated, report.mpmd.predicted,
              0.35 * report.mpmd.predicted);
}

TEST(Pipeline, PredictionsOnlyModeSkipsSimulation) {
  PipelineConfig config = small_config(8);
  config.run_simulation = false;
  const mdg::Mdg graph = complex_matmul_mdg(32);
  const Compiler compiler(config);
  const PipelineReport report = compiler.compile_and_run(graph);
  EXPECT_GT(report.mpmd.predicted, 0.0);
  EXPECT_EQ(report.mpmd.simulated, 0.0);
  EXPECT_EQ(report.serial_seconds, 0.0);
}

TEST(Pipeline, RejectsNonPowerOfTwoProcessors) {
  PipelineConfig config = small_config(8);
  config.processors = 12;
  config.machine.size = 12;
  EXPECT_THROW(Compiler{config}, Error);
}

TEST(Pipeline, RejectsMachineSmallerThanTarget) {
  PipelineConfig config = small_config(8);
  config.machine.size = 4;
  EXPECT_THROW(Compiler{config}, Error);
}

TEST(Pipeline, SummaryMentionsKeyQuantities) {
  const mdg::Mdg graph = complex_matmul_mdg(32);
  const Compiler compiler(small_config(8));
  const PipelineReport report = compiler.compile_and_run(graph);
  const std::string s = report.summary();
  EXPECT_NE(s.find("Phi="), std::string::npos);
  EXPECT_NE(s.find("T_psa="), std::string::npos);
  EXPECT_NE(s.find("speedup"), std::string::npos);
}

}  // namespace
}  // namespace paradigm::core
