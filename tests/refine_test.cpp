// Tests for schedule-aware prediction refinement: same-rank-set 1D
// transfer elision.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/psa.hpp"
#include "sched/refine.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/rng.hpp"

namespace paradigm::sched {
namespace {

cost::MachineParams mirror_params(const sim::MachineConfig& mc) {
  cost::MachineParams mp;
  mp.t_ss = mc.send_startup;
  mp.t_ps = mc.send_per_byte;
  mp.t_sr = mc.recv_startup;
  mp.t_pr = mc.recv_per_byte;
  return mp;
}

cost::KernelCostTable mirror_table(const sim::MachineConfig& mc,
                                   const mdg::Mdg& graph) {
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop ||
        node.loop.op == mdg::LoopOp::kSynthetic) {
      continue;
    }
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (!table.contains(key)) {
      table.set(key,
                cost::AmdahlParams{
                    mc.timing_for(key.op).serial_fraction,
                    mc.sequential_seconds(key.op, key.rows, key.cols,
                                          key.inner)});
    }
  }
  return table;
}

TEST(Refine, SpmdCollapsesToKernelTime) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  sim::MachineConfig mc;
  mc.size = 8;
  mc.noise_sigma = 0.0;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const Schedule spmd = spmd_schedule(model, 8);

  const RefinedPrediction refined = refine_prediction(model, spmd);
  // Every data edge is same-group 1D -> elided.
  EXPECT_GT(refined.elided_edges, 0u);
  EXPECT_LT(refined.makespan, spmd.makespan());

  // The refined SPMD prediction is the serialized kernel time.
  const std::vector<double> alloc(graph.node_count(), 8.0);
  double kernel_sum = 0.0;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop) {
      kernel_sum += model.processing_cost(node.id, 8.0);
    }
  }
  EXPECT_NEAR(refined.makespan, kernel_sum, 1e-9 * kernel_sum);
}

TEST(Refine, NeverIncreasesAndTracksSimulationBetter) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  sim::MachineConfig mc;
  mc.size = 8;
  mc.noise_sigma = 0.0;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const Schedule spmd = spmd_schedule(model, 8);
  const RefinedPrediction refined = refine_prediction(model, spmd);

  // Simulated SPMD execution pays no transfers; the refined prediction
  // must be much closer to it than the full-cost makespan.
  const auto generated = codegen::generate_mpmd(graph, spmd);
  sim::Simulator simulator(mc);
  const double simulated = simulator.run(generated.program).finish_time;
  EXPECT_LT(std::abs(refined.makespan - simulated),
            std::abs(spmd.makespan() - simulated));
  EXPECT_NEAR(refined.makespan, simulated, 0.15 * simulated);
}

TEST(Refine, PsaScheduleMostlyUnchangedWhenGroupsDiffer) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  sim::MachineConfig mc;
  mc.size = 8;
  mc.noise_sigma = 0.0;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 8.0);
  const PsaResult psa = prioritized_schedule(model, alloc.allocation, 8);
  const RefinedPrediction refined =
      refine_prediction(model, psa.schedule);
  EXPECT_LE(refined.makespan, psa.finish_time + 1e-9);
  // Refinement can only help modestly here: most PSA groups differ.
  EXPECT_GT(refined.makespan, 0.5 * psa.finish_time);
}

TEST(Refine, RandomGraphsNeverIncrease) {
  Rng rng(5150);
  for (int i = 0; i < 10; ++i) {
    const mdg::Mdg graph = mdg::random_mdg(rng);
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{});
    const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
    const PsaResult psa =
        prioritized_schedule(model, alloc.allocation, 16);
    const RefinedPrediction refined =
        refine_prediction(model, psa.schedule);
    EXPECT_LE(refined.makespan, psa.finish_time + 1e-9) << "seed " << i;
    EXPECT_GT(refined.makespan, 0.0);
  }
}

}  // namespace
}  // namespace paradigm::sched
