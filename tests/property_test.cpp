// Cross-cutting property tests: scaling invariance of the formulation,
// the message-count structure behind the Section-4 cost functions,
// an empirical check of Theorem 2's content, and determinism of the
// whole pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "codegen/mpmd.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/bounds.hpp"
#include "sched/psa.hpp"
#include "sim/redistribute.hpp"
#include "solver/allocator.hpp"
#include "support/rng.hpp"

namespace paradigm {
namespace {

/// Clones a synthetic graph with every tau multiplied by `c`.
mdg::Mdg scale_taus(const mdg::Mdg& graph, double c) {
  mdg::Mdg out;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    out.add_synthetic(node.name, node.loop.synth_alpha,
                      node.loop.synth_tau * c);
  }
  for (const auto& edge : graph.edges()) {
    if (graph.node(edge.src).kind != mdg::NodeKind::kLoop ||
        graph.node(edge.dst).kind != mdg::NodeKind::kLoop) {
      continue;
    }
    out.add_synthetic_dependence(
        edge.src, edge.dst, edge.total_bytes(),
        edge.transfers.empty() ? mdg::TransferKind::k1D
                               : edge.transfers[0].kind);
  }
  out.finalize();
  return out;
}

cost::MachineParams scale_machine(double c) {
  cost::MachineParams mp;
  mp.t_ss *= c;
  mp.t_ps *= c;
  mp.t_sr *= c;
  mp.t_pr *= c;
  mp.t_n *= c;
  return mp;
}

class PropertySeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySeeded, PhiScalesLinearlyWithTime) {
  // Scaling every time constant (taus and message parameters) by c
  // scales every cost component, hence Phi, by exactly c — and leaves
  // the optimal allocation unchanged. The solver must track this.
  Rng rng(GetParam());
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const double c = 7.5;
  const mdg::Mdg scaled = scale_taus(graph, c);

  const cost::CostModel base(graph, cost::MachineParams{},
                             cost::KernelCostTable{});
  const cost::CostModel big(scaled, scale_machine(c),
                            cost::KernelCostTable{});
  // Exact scaling at a fixed allocation.
  std::vector<double> alloc(graph.node_count(), 3.0);
  EXPECT_NEAR(big.phi(alloc, 16.0), c * base.phi(alloc, 16.0),
              1e-9 * big.phi(alloc, 16.0));
  // And at the solved optimum.
  const auto a = solver::ConvexAllocator{}.allocate(base, 16.0);
  const auto b = solver::ConvexAllocator{}.allocate(big, 16.0);
  EXPECT_NEAR(b.phi, c * a.phi, 0.005 * b.phi);
}

TEST_P(PropertySeeded, Theorem2ContentHolds) {
  // max(A_p, C_p) at the rounded-and-bounded allocation lower-bounds
  // T_opt^PB, so by Theorem 2 it must stay within (3/2)^2 (p/PB)^2 of
  // Phi.
  Rng rng(GetParam() + 31);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const std::uint64_t p = 32;
  const auto alloc = solver::ConvexAllocator{}.allocate(
      model, static_cast<double>(p));
  const std::uint64_t pb = sched::optimal_processor_bound(p);
  auto bounded = sched::bound_allocation(
      sched::round_allocation(alloc.allocation, p), pb);
  std::vector<double> bounded_d(bounded.begin(), bounded.end());
  const double lower_bound_on_t_opt =
      model.phi(bounded_d, static_cast<double>(p));
  EXPECT_LE(lower_bound_on_t_opt,
            sched::theorem2_factor(p, pb) * alloc.phi * (1.0 + 1e-9));
}

TEST_P(PropertySeeded, PipelineIsDeterministic) {
  Rng rng(GetParam() + 63);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto a1 = solver::ConvexAllocator{}.allocate(model, 16.0);
  const auto a2 = solver::ConvexAllocator{}.allocate(model, 16.0);
  ASSERT_EQ(a1.allocation.size(), a2.allocation.size());
  for (std::size_t i = 0; i < a1.allocation.size(); ++i) {
    EXPECT_DOUBLE_EQ(a1.allocation[i], a2.allocation[i]);
  }
  const auto s1 = sched::prioritized_schedule(model, a1.allocation, 16);
  const auto s2 = sched::prioritized_schedule(model, a2.allocation, 16);
  EXPECT_DOUBLE_EQ(s1.finish_time, s2.finish_time);
  const auto g1 = codegen::generate_mpmd(graph, s1.schedule);
  const auto g2 = codegen::generate_mpmd(graph, s2.schedule);
  EXPECT_EQ(g1.planned_messages, g2.planned_messages);
  EXPECT_EQ(g1.planned_bytes, g2.planned_bytes);
  EXPECT_EQ(g1.program.total_instructions(),
            g2.program.total_instructions());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeded,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(Property, SmoothedGradientMatchesFiniteDifferencesAcrossSeeds) {
  // Analytic-vs-central-difference gradient check for the smoothed
  // objective, driven by a fixed list of seeds (not a single draw) so a
  // regression in any one adjoint path — receive sums, soft maxes, the
  // critical-path reverse pass — is caught across many graph shapes.
  //
  // Tolerance: with central differences the truncation error is
  // O(h^2 f''') and the roundoff error O(eps |f| / h). At h = 1e-5 and
  // the curvature the LSE temperatures (mu_x = 0.25, mu_t = 0.01 s)
  // allow, both sit below ~1e-7 relative, so 2e-6 * (1 + |fd|) is safe
  // while being 50x tighter than the 1e-4 bound the one-sided check in
  // solver_test.cpp uses with h = 1e-6.
  const std::uint64_t kSeeds[] = {3, 17, 58, 101, 977, 4242, 90210};
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    const mdg::Mdg graph = mdg::random_mdg(rng);
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{});
    const solver::ConvexAllocator allocator;
    const double p = 16.0;
    Rng xr(seed * 31 + 7);
    std::vector<double> x(graph.node_count());
    for (auto& xi : x) xi = xr.uniform(0.1, std::log(p) - 0.1);

    std::vector<double> grad(x.size(), 0.0);
    const double mu_x = 0.25;
    const double mu_t = 0.01;
    allocator.smoothed_objective(model, p, x, mu_x, mu_t, grad);
    const double h = 1e-5;
    for (std::size_t k = 0; k < x.size(); ++k) {
      std::vector<double> xp = x;
      std::vector<double> xm = x;
      xp[k] += h;
      xm[k] -= h;
      const double fp =
          allocator.smoothed_objective(model, p, xp, mu_x, mu_t, {});
      const double fm =
          allocator.smoothed_objective(model, p, xm, mu_x, mu_t, {});
      const double fd = (fp - fm) / (2 * h);
      EXPECT_NEAR(grad[k], fd, 2e-6 * (1.0 + std::abs(fd)))
          << "seed " << seed << " var " << k;
    }
  }
}

TEST(Property, BoundFactorsFiniteAndAtLeastOneAcrossMachineSizes) {
  // Corollary 1 and the Theorem 1-3 factors must stay finite and >= 1
  // over the full machine-size range the pipeline accepts, including
  // the degenerate p = 1 and the largest supported p = 4096. These are
  // exactly the quantities the post-schedule invariant gate (DESIGN
  // §10) checks on every run, so they must be well-defined everywhere.
  for (std::uint64_t p = 1; p <= 4096; p *= 2) {
    const std::uint64_t pb = sched::optimal_processor_bound(p);
    EXPECT_GE(pb, 1u) << "p=" << p;
    EXPECT_LE(pb, p) << "p=" << p;
    EXPECT_EQ(pb & (pb - 1), 0u) << "p=" << p;  // power of two
    for (const double factor :
         {sched::theorem1_factor(p, pb), sched::theorem2_factor(p, pb),
          sched::theorem3_factor(p, pb)}) {
      EXPECT_TRUE(std::isfinite(factor)) << "p=" << p << " pb=" << pb;
      EXPECT_GE(factor, 1.0) << "p=" << p << " pb=" << pb;
    }
    // Corollary 1: PB minimizes the Theorem-3 factor over powers of two.
    for (std::uint64_t q = 1; q <= p; q *= 2) {
      EXPECT_LE(sched::theorem3_factor(p, pb),
                sched::theorem3_factor(p, q) * (1.0 + 1e-12))
          << "p=" << p << " pb=" << pb << " q=" << q;
    }
  }
}

TEST(Property, ExtremeAmdahlParametersKeepTheGuaranteesFinite) {
  // The corner cases of the parameter domain: fully parallel
  // (alpha = 0) and fully serial (alpha = 1) nodes, with taus at both
  // ends of the supported dynamic range (1e-12 s and 1e12 s), solved
  // for the smallest and largest machine. The allocation, Phi, and the
  // scheduled makespan must all stay finite, and the rounded powers
  // must respect [1, PB].
  for (const double alpha : {0.0, 1.0}) {
    for (const double tau : {1e-12, 1e12}) {
      for (const double p : {1.0, 4096.0}) {
        mdg::Mdg graph;
        const auto a = graph.add_synthetic("a", alpha, tau);
        const auto b = graph.add_synthetic("b", alpha, tau);
        const auto c = graph.add_synthetic("c", alpha, tau);
        graph.add_synthetic_dependence(a, b, 1 << 12);
        graph.add_synthetic_dependence(a, c, 1 << 12);
        graph.finalize();
        const cost::CostModel model(graph, cost::MachineParams{},
                                    cost::KernelCostTable{});
        solver::ConvexAllocatorConfig light;
        light.continuation_rounds = 2;
        light.max_inner_iterations = 60;
        const auto alloc =
            solver::ConvexAllocator(light).allocate(model, p);
        EXPECT_TRUE(alloc.finite())
            << "alpha=" << alpha << " tau=" << tau << " p=" << p;
        EXPECT_GE(alloc.phi, 0.0);

        const auto up = static_cast<std::uint64_t>(p);
        const auto psa =
            sched::prioritized_schedule(model, alloc.allocation, up);
        EXPECT_TRUE(std::isfinite(psa.finish_time))
            << "alpha=" << alpha << " tau=" << tau << " p=" << p;
        EXPECT_GE(psa.pb, 1u);
        EXPECT_LE(psa.pb, up);
        for (const std::uint64_t p_i : psa.allocation) {
          EXPECT_GE(p_i, 1u);
          EXPECT_LE(p_i, psa.pb);
          EXPECT_EQ(p_i & (p_i - 1), 0u);
        }
        EXPECT_TRUE(
            std::isfinite(sched::theorem3_factor(up, psa.pb)));
        EXPECT_GE(sched::theorem3_factor(up, psa.pb), 1.0);
      }
    }
  }
}

TEST(Property, OneDMessageStructureMatchesCostModelTerm) {
  // The 1D cost's startup term counts max(p_i, p_j)/p_i messages per
  // sender; for power-of-two groups the redistribution plan produces
  // exactly that (the partition nesting property). Sweep all pairs.
  for (std::uint32_t pi = 1; pi <= 32; pi *= 2) {
    for (std::uint32_t pj = 1; pj <= 32; pj *= 2) {
      std::vector<std::uint32_t> src, dst;
      for (std::uint32_t i = 0; i < pi; ++i) src.push_back(i);
      for (std::uint32_t j = 0; j < pj; ++j) dst.push_back(100 + j);
      const auto plan = sim::plan_redistribution(
          256, 4, src, sim::Distribution::kRow, dst,
          sim::Distribution::kRow);
      const std::uint32_t mx = std::max(pi, pj);
      EXPECT_EQ(plan.messages.size(), mx) << pi << "x" << pj;
      std::map<std::uint32_t, std::size_t> per_sender, per_recv;
      for (const auto& piece : plan.messages) {
        ++per_sender[piece.src_rank];
        ++per_recv[piece.dst_rank];
      }
      for (const auto& [rank, count] : per_sender) {
        EXPECT_EQ(count, mx / pi) << pi << "x" << pj;
      }
      for (const auto& [rank, count] : per_recv) {
        EXPECT_EQ(count, mx / pj) << pi << "x" << pj;
      }
    }
  }
}

TEST(Property, TwoDMessageStructureMatchesCostModelTerm) {
  // The 2D cost's startup terms count p_j messages per sender and p_i
  // per receiver.
  for (std::uint32_t pi = 1; pi <= 16; pi *= 2) {
    for (std::uint32_t pj = 1; pj <= 16; pj *= 2) {
      std::vector<std::uint32_t> src, dst;
      for (std::uint32_t i = 0; i < pi; ++i) src.push_back(i);
      for (std::uint32_t j = 0; j < pj; ++j) dst.push_back(100 + j);
      const auto plan = sim::plan_redistribution(
          64, 64, src, sim::Distribution::kRow, dst,
          sim::Distribution::kCol);
      EXPECT_EQ(plan.messages.size(), pi * pj);
      std::map<std::uint32_t, std::size_t> per_sender;
      for (const auto& piece : plan.messages) ++per_sender[piece.src_rank];
      for (const auto& [rank, count] : per_sender) EXPECT_EQ(count, pj);
    }
  }
}

TEST(Property, SimulationMatchesAcrossEquivalentMachineSizes) {
  // A schedule on p processors simulated on a machine of exactly p
  // ranks must behave identically to the same program on a larger
  // machine (extra idle ranks change nothing).
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  sim::MachineConfig small;
  small.size = 4;
  small.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop) {
      const auto key = cost::KernelCostTable::key_for(graph, node);
      if (!table.contains(key)) {
        table.set(key, cost::AmdahlParams{0.1, 0.01});
      }
    }
  }
  const cost::CostModel model(graph, cost::MachineParams{}, table);
  const sched::Schedule spmd = sched::spmd_schedule(model, 4);
  const auto generated = codegen::generate_mpmd(graph, spmd);

  sim::Simulator sim_small(small);
  const double t_small = sim_small.run(generated.program).finish_time;
  sim::MachineConfig large = small;
  large.size = 16;
  sim::Simulator sim_large(large);
  sim::MpmdProgram padded(16);
  for (std::uint32_t r = 0; r < 4; ++r) {
    padded.streams[r] = generated.program.streams[r];
  }
  const double t_large = sim_large.run(padded).finish_time;
  EXPECT_DOUBLE_EQ(t_small, t_large);
}

}  // namespace
}  // namespace paradigm
