// ALICE-style storage-fault sweep (DESIGN §14, `ctest -L recovery`).
//
// The crash soak (crash_soak_test.cpp) proves recovery from *process*
// crashes at clean or torn record boundaries. This suite proves the
// stronger claim: recovery from every legal *post-power-loss disk
// state*. A service run over the shared 50-job crash corpus is
// recorded through a FaultyVfs op log; then, at every operation
// boundary of that log, every combination of
//
//   tail loss      × {kept, synced-only, torn}   (per-file data)
//   metadata loss  × seeded prefix of uncommitted create/rename/remove
//
// is materialized as a real on-disk directory, recovered from, and the
// recovered ledger must be byte-identical to the crash-free run's with
// the exactly-once equation conserved — at 1 and 4 worker threads,
// and with the allocation cache on (extended equation). States are
// deduplicated by content digest so the sweep stays tractable.
//
// The suite also pins the injected-fault degradation contract:
// transient ENOSPC/EIO/short-writes ride the bounded retry, sticky
// ones quarantine the journal and fail-stop (StorageError → CLI exit
// 25), failed snapshot renames degrade without losing durability.
// Failing states are archived (journal + fault schedule) to
// $PARADIGM_RECOVERY_ARTIFACT_DIR.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "crash_corpus.hpp"
#include "support/parallel.hpp"
#include "support/vfs.hpp"
#include "support/wal.hpp"
#include "svc/persist.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

namespace fs = std::filesystem;

class StorageFault : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("storage_fault_" + std::string(
                                    ::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    set_thread_count(0);
    fs::remove_all(root_);
  }

  /// Recovers a materialized crash state the way an operator would:
  /// recover from the journal when it is structurally openable, delete
  /// the stub and start fresh when its header never became durable
  /// (only possible before the first record was, so nothing is lost),
  /// start fresh when the journal's very creation was lost.
  template <typename RunFn>
  static ServiceReport recover_state(const fs::path& dir, RunFn run,
                                     PersistStats* stats_out) {
    const fs::path journal = dir / "journal.wal";
    bool recover = false;
    if (fs::exists(journal)) {
      try {
        wal::read_journal(journal.string());
        recover = true;
      } catch (const Error&) {
        // Header never durable — predates the first durable record
        // (the header is fsync'd before any append); delete and restart.
        fs::remove(journal);
      }
    }
    PersistConfig pc;
    pc.dir = dir.string();
    pc.recover = recover;
    pc.snapshot_every = kCrashSnapshotEvery;
    pc.batch_sync_interval = 1;
    Persistence persist(pc);
    const ServiceReport report = run(&persist);
    if (stats_out != nullptr) *stats_out = persist.stats();
    return report;
  }

  /// Full power-loss state enumeration at one thread count.
  void sweep(std::size_t threads) {
    set_thread_count(threads);

    const ServiceReport baseline = run_crash_service(nullptr);
    const std::string expected = baseline.ledger();
    assert_unique_ledger_records(expected);

    // Recorded run: all storage traffic through a fault-free FaultyVfs
    // so the op log captures every append/sync/rename boundary.
    const fs::path live = root_ / ("live-t" + std::to_string(threads));
    fs::create_directories(live);
    vfs::FaultyVfs recorder(vfs::Vfs::real());
    {
      PersistConfig pc;
      pc.dir = live.string();
      pc.snapshot_every = kCrashSnapshotEvery;
      // Interval 1 = a commit boundary at *every* exec digest: the
      // densest legal-state space the enumeration can cover.
      pc.batch_sync_interval = 1;
      pc.fs = &recorder;
      Persistence persist(pc);
      const ServiceReport journaled = run_crash_service(&persist);
      ASSERT_EQ(journaled.ledger(), expected)
          << "recording changed the ledger";
      ASSERT_GT(persist.stats().journal_syncs, 10u)
          << "kBatch must sync at exec boundaries";
    }
    const std::vector<vfs::OpRecord>& log = recorder.log();
    ASSERT_GT(log.size(), 200u) << "op log too small to be a sweep";

    const fs::path crashed = root_ / ("crashed-t" + std::to_string(threads));
    std::set<std::uint64_t> seen;
    std::size_t recovered_states = 0;
    constexpr vfs::TailLoss kModes[] = {vfs::TailLoss::kKeepAll,
                                        vfs::TailLoss::kSyncedOnly,
                                        vfs::TailLoss::kTorn};
    for (std::size_t crash_op = 0; crash_op <= log.size(); ++crash_op) {
      for (const vfs::TailLoss loss : kModes) {
        const std::uint64_t seed =
            crash_op * 3 + static_cast<std::uint64_t>(loss);
        const vfs::CrashState state = vfs::materialize_crash_state(
            log, crash_op, loss, seed, live.string(), crashed.string());
        if (!seen.insert(state.digest).second) continue;  // Duplicate state.
        ++recovered_states;
        SCOPED_TRACE("threads=" + std::to_string(threads) + " " +
                     state.description);

        PersistStats stats;
        const ServiceReport recovered =
            recover_state(crashed, run_crash_service, &stats);
        EXPECT_EQ(recovered.ledger(), expected);
        // Exactly-once survives power loss: every baseline attempt is
        // served by exactly one of {durable digest, fresh execution}.
        EXPECT_EQ(recovered.pipeline_runs + stats.memo_hits,
                  baseline.pipeline_runs);
        assert_unique_ledger_records(recovered.ledger());

        if (::testing::Test::HasFailure()) {
          const std::string tag = "storage-t" + std::to_string(threads) +
                                  "-op" + std::to_string(crash_op);
          archive_on_failure(crashed, tag,
                             "seed=" + std::to_string(seed) + "\n" +
                                 state.description + "\n");
          FAIL() << "post-power-loss state failed: " << state.description
                 << "; journal + fault schedule archived";
        }
      }
    }
    // The sweep must genuinely explore the state space; a collapsed
    // dedup means the model (or the sync placement) broke.
    EXPECT_GT(recovered_states, 100u)
        << "only " << recovered_states << " unique disk states";
    fs::remove_all(root_ / ("live-t" + std::to_string(threads)));
  }

  fs::path root_;
};

TEST_F(StorageFault, EveryPowerLossStateRecoversByteIdenticalSerial) {
  sweep(1);
}

TEST_F(StorageFault, EveryPowerLossStateRecoversByteIdenticalFourThreads) {
  sweep(4);
}

/// Cache-enabled power-loss sweep: the extended exactly-once equation
/// (runs + cache_hits + coalesced + memo_hits) must conserve from
/// every legal post-power-loss state of the duplicate-heavy corpus.
TEST_F(StorageFault, CachePowerLossStatesConserveExtendedEquation) {
  set_thread_count(4);
  const ServiceReport baseline = run_cached_crash_service(nullptr);
  const std::string expected = baseline.ledger();
  ASSERT_GT(baseline.cache_hits, 0u);
  ASSERT_GT(baseline.coalesced, 0u);
  const std::size_t baseline_served =
      baseline.pipeline_runs + baseline.cache_hits + baseline.coalesced;

  const fs::path live = root_ / "live-cache";
  fs::create_directories(live);
  vfs::FaultyVfs recorder(vfs::Vfs::real());
  {
    PersistConfig pc;
    pc.dir = live.string();
    pc.snapshot_every = 16;
    pc.batch_sync_interval = 1;
    pc.fs = &recorder;
    Persistence persist(pc);
    ASSERT_EQ(run_cached_crash_service(&persist).ledger(), expected);
  }
  const std::vector<vfs::OpRecord>& log = recorder.log();
  ASSERT_GT(log.size(), 100u);

  const fs::path crashed = root_ / "crashed-cache";
  std::set<std::uint64_t> seen;
  constexpr vfs::TailLoss kModes[] = {vfs::TailLoss::kKeepAll,
                                      vfs::TailLoss::kSyncedOnly,
                                      vfs::TailLoss::kTorn};
  for (std::size_t crash_op = 0; crash_op <= log.size(); ++crash_op) {
    for (const vfs::TailLoss loss : kModes) {
      const std::uint64_t seed =
          crash_op * 3 + static_cast<std::uint64_t>(loss);
      const vfs::CrashState state = vfs::materialize_crash_state(
          log, crash_op, loss, seed, live.string(), crashed.string());
      if (!seen.insert(state.digest).second) continue;
      SCOPED_TRACE(state.description);

      const fs::path journal = crashed / "journal.wal";
      bool recover = false;
      if (fs::exists(journal)) {
        try {
          wal::read_journal(journal.string());
          recover = true;
        } catch (const Error&) {
          fs::remove(journal);
        }
      }
      PersistConfig pc;
      pc.dir = crashed.string();
      pc.recover = recover;
      pc.snapshot_every = 16;
      pc.batch_sync_interval = 1;
      Persistence persist(pc);
      const ServiceReport recovered = run_cached_crash_service(&persist);

      EXPECT_EQ(recovered.ledger(), expected);
      EXPECT_EQ(recovered.pipeline_runs + recovered.cache_hits +
                    recovered.coalesced + persist.stats().memo_hits,
                baseline_served);

      if (::testing::Test::HasFailure()) {
        archive_on_failure(crashed, "cache-op" + std::to_string(crash_op),
                           "seed=" + std::to_string(seed) + "\n" +
                               state.description + "\n");
        FAIL() << "cache power-loss state failed: " << state.description;
      }
    }
  }
}

// ---- Injected-fault degradation contract ----------------------------

TEST_F(StorageFault, TransientShortWriteRidesTheBoundedRetry) {
  vfs::FaultPlan plan;
  plan.fail_append_after = 40;
  plan.append_fault = vfs::FaultKind::kShortWrite;
  plan.append_fail_count = 1;  // One torn append, then the disk heals.
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);

  const ServiceReport baseline = run_crash_service(nullptr);
  const fs::path dir = root_ / "retry";
  PersistConfig pc;
  pc.dir = dir.string();
  pc.snapshot_every = kCrashSnapshotEvery;
  pc.fs = &faulty;
  Persistence persist(pc);
  const ServiceReport report = run_crash_service(&persist);

  // The torn tail was salvaged and the append retried: same ledger,
  // full durability, no quarantine.
  EXPECT_EQ(report.ledger(), baseline.ledger());
  EXPECT_GE(persist.stats().storage_retries, 1u);
  EXPECT_FALSE(persist.stats().quarantined);
  assert_unique_exec_records(persist.journal_path());
}

TEST_F(StorageFault, StickyEnospcQuarantinesThenRecovers) {
  vfs::FaultPlan plan;
  plan.fail_append_after = 60;
  plan.append_fault = vfs::FaultKind::kEnospc;
  plan.short_write_fraction = 0.0;
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);

  const ServiceReport baseline = run_crash_service(nullptr);
  const fs::path dir = root_ / "enospc";
  {
    PersistConfig pc;
    pc.dir = dir.string();
    pc.snapshot_every = kCrashSnapshotEvery;
    pc.fs = &faulty;
    Persistence persist(pc);
    try {
      run_crash_service(&persist);
      FAIL() << "sticky ENOSPC must fail-stop";
    } catch (const vfs::StorageError& e) {
      EXPECT_EQ(e.kind(), vfs::FaultKind::kEnospc);
    }
    EXPECT_TRUE(persist.stats().quarantined);
    EXPECT_GE(persist.stats().storage_retries, 1u);
  }
  // Space freed (no injection): recovery completes from the intact
  // journal prefix with exactly-once conserved.
  PersistStats stats;
  const ServiceReport recovered =
      recover_state(dir, run_crash_service, &stats);
  EXPECT_EQ(recovered.ledger(), baseline.ledger());
  EXPECT_EQ(recovered.pipeline_runs + stats.memo_hits,
            baseline.pipeline_runs);
}

TEST_F(StorageFault, SyncFailureQuarantinesImmediately) {
  vfs::FaultPlan plan;
  plan.fail_sync_after = 5;
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);

  const fs::path dir = root_ / "syncfail";
  PersistConfig pc;
  pc.dir = dir.string();
  pc.snapshot_every = kCrashSnapshotEvery;
  // Interval 1 keeps sync #5 a *journal* group commit; at the default
  // cadence it would land inside a snapshot writer, whose failures
  // degrade instead of quarantining.
  pc.batch_sync_interval = 1;
  pc.fs = &faulty;
  Persistence persist(pc);
  try {
    run_crash_service(&persist);
    FAIL() << "failed fsync must fail-stop";
  } catch (const vfs::StorageError& e) {
    EXPECT_EQ(e.kind(), vfs::FaultKind::kSyncFailure);
  }
  EXPECT_TRUE(persist.stats().quarantined);
  // No retry for fsync: the kernel may have dropped the dirty pages.
  EXPECT_EQ(persist.stats().storage_retries, 0u);
}

TEST_F(StorageFault, FailedSnapshotRenameDegradesWithoutDataLoss) {
  vfs::FaultPlan plan;
  plan.fail_rename_after = 0;  // Every snapshot publish fails.
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);

  const ServiceReport baseline = run_crash_service(nullptr);
  const fs::path dir = root_ / "renamefail";
  PersistConfig pc;
  pc.dir = dir.string();
  pc.snapshot_every = kCrashSnapshotEvery;
  pc.fs = &faulty;
  Persistence persist(pc);
  const ServiceReport report = run_crash_service(&persist);

  // Snapshots are an optimization: losing every one of them costs
  // nothing but replay time. The run completes, durably.
  EXPECT_EQ(report.ledger(), baseline.ledger());
  EXPECT_GE(persist.stats().snapshot_failures, 1u);
  EXPECT_EQ(persist.stats().snapshots_written, 0u);
  EXPECT_FALSE(persist.stats().quarantined);
  assert_unique_exec_records(persist.journal_path());
}

/// Sync policies change *when* data becomes power-loss durable, never
/// *what* the service computes: the ledger is byte-identical across
/// always/batch/never.
TEST_F(StorageFault, SyncPolicyNeverChangesTheLedger) {
  std::string ledgers[3];
  const wal::SyncPolicy policies[] = {wal::SyncPolicy::kAlways,
                                      wal::SyncPolicy::kBatch,
                                      wal::SyncPolicy::kNever};
  for (int i = 0; i < 3; ++i) {
    const fs::path dir = root_ / ("policy-" + std::to_string(i));
    PersistConfig pc;
    pc.dir = dir.string();
    pc.snapshot_every = kCrashSnapshotEvery;
    pc.sync_policy = policies[i];
    Persistence persist(pc);
    ledgers[i] = run_crash_service(&persist).ledger();
    if (policies[i] == wal::SyncPolicy::kNever) {
      EXPECT_EQ(persist.stats().journal_syncs, 0u);
    } else {
      EXPECT_GT(persist.stats().journal_syncs, 0u);
    }
  }
  EXPECT_EQ(ledgers[0], ledgers[1]);
  EXPECT_EQ(ledgers[1], ledgers[2]);
}

}  // namespace
}  // namespace paradigm::svc
