// Unit tests for the support library: stats/OLS, matrix, RNG, power-of-
// two helpers, table/plot rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "support/ascii_plot.hpp"
#include "support/error.hpp"
#include "support/matrix.hpp"
#include "support/pow2.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace paradigm {
namespace {

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 6.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_THROW(mean({}), Error);
}

TEST(Stats, SolveLinearSystem) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  const auto x = solve_linear_system({{2, 1}, {1, -1}}, {5, 1});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Stats, SolveSingularThrows) {
  EXPECT_THROW(solve_linear_system({{1, 2}, {2, 4}}, {1, 2}), Error);
}

TEST(Stats, LeastSquaresExactFit) {
  // y = 3 + 2 t.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int t = 0; t < 6; ++t) {
    rows.push_back({1.0, static_cast<double>(t)});
    y.push_back(3.0 + 2.0 * t);
  }
  const OlsFit fit = least_squares(rows, y);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_LT(fit.max_rel_residual, 1e-9);
}

TEST(Stats, LeastSquaresOverdeterminedNoisy) {
  Rng rng(42);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int t = 0; t < 200; ++t) {
    const double x = rng.uniform(0.0, 10.0);
    rows.push_back({1.0, x});
    y.push_back(1.5 + 0.75 * x + rng.normal(0.0, 0.01));
  }
  const OlsFit fit = least_squares(rows, y);
  EXPECT_NEAR(fit.coefficients[0], 1.5, 0.02);
  EXPECT_NEAR(fit.coefficients[1], 0.75, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Stats, NonNegativeLeastSquaresClamps) {
  // True model has a negative weight on the second column; NNLS must
  // drop it and keep a non-negative solution.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int t = 1; t <= 20; ++t) {
    rows.push_back({static_cast<double>(t), 1.0});
    y.push_back(2.0 * t - 5.0);
  }
  const OlsFit fit = least_squares_nonneg(rows, y);
  for (const double c : fit.coefficients) EXPECT_GE(c, 0.0);
}

TEST(Stats, UnderdeterminedThrows) {
  EXPECT_THROW(least_squares({{1.0, 2.0}}, {1.0}), Error);
}

TEST(Matrix, BasicOps) {
  Matrix a(2, 3, 1.0);
  Matrix b(2, 3, 2.0);
  const Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 3.0);
  const Matrix d = b - a;
  EXPECT_DOUBLE_EQ(d.at(1, 2), 1.0);
  EXPECT_THROW(a.at(2, 0), Error);
}

TEST(Matrix, MultiplyIdentity) {
  const Matrix m = Matrix::deterministic(5, 5, 7);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT((m * i).max_abs_diff(m), 1e-15);
  EXPECT_LT((i * m).max_abs_diff(m), 1e-15);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  const Matrix c = a * a;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 7);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 10);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 15);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 22);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, Error);
}

TEST(Matrix, BlockRoundTrip) {
  const Matrix m = Matrix::deterministic(8, 6, 3);
  const Matrix blk = m.block(2, 1, 4, 3);
  Matrix copy(8, 6, 0.0);
  copy.set_block(2, 1, blk);
  EXPECT_DOUBLE_EQ(copy.at(3, 2), m.at(3, 2));
  EXPECT_DOUBLE_EQ(copy.at(0, 0), 0.0);
}

TEST(Matrix, DeterministicOffsetsConsistent) {
  // A block of a deterministically-filled matrix equals the matrix
  // generated directly at that offset — the property distributed init
  // kernels rely on.
  const Matrix whole = Matrix::deterministic(10, 10, 99);
  const Matrix part = Matrix::deterministic(4, 10, 99, 3, 0);
  EXPECT_LT(whole.block(3, 0, 4, 10).max_abs_diff(part), 1e-15);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, LognormalUnitMeanApproxOne) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_unit(0.1);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, ForkIndependence) {
  Rng base(5);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamGoldenValues) {
  // Golden outputs of Rng::stream — the parallel layer keys every
  // per-task RNG on stream(task_index) (DESIGN §8), so these values must
  // be stable across platforms and releases. If this test fails, the
  // derivation changed and every recorded multi-start / fault-sweep
  // experiment is invalidated: fix the derivation, don't re-pin.
  const Rng base(0x1994ULL);
  {
    Rng s = base.stream(0);
    EXPECT_EQ(s.next_u64(), 0x3fe5eca2ff687b5dULL);
    EXPECT_EQ(s.next_u64(), 0x971affe92c1d0eceULL);
  }
  {
    Rng s = base.stream(1);
    EXPECT_EQ(s.next_u64(), 0x0f0d71c081cfdbbaULL);
    EXPECT_EQ(s.next_u64(), 0xf35e81a250e5e972ULL);
  }
  {
    Rng s = base.stream(2);
    EXPECT_EQ(s.next_u64(), 0x3f6c5bdb8cc3abe7ULL);
    EXPECT_EQ(s.next_u64(), 0x64acb31261df3bb2ULL);
  }
  {
    Rng s = base.stream(7);
    EXPECT_EQ(s.next_u64(), 0xa46d21d25d9fcbdbULL);
    EXPECT_EQ(s.next_u64(), 0xf26f1ebc34d1e96eULL);
  }
  // The allocator's default start_seed, stream 1: the first multi-start
  // initial point is built from these uniforms.
  Rng s1 = Rng(0x51a7c0de1994ULL).stream(1);
  EXPECT_DOUBLE_EQ(s1.uniform(), 0.80165557544327459);
  EXPECT_DOUBLE_EQ(s1.uniform(), 0.49338273879562677);
}

TEST(Rng, StreamDoesNotMutateParent) {
  Rng a(42);
  Rng b(42);
  (void)a.stream(3);
  (void)a.stream(9);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamChiSquaredIndependence) {
  // Smoke test that values drawn across distinct streams look uniform:
  // 64 streams x 256 draws binned into 16 cells. For 15 degrees of
  // freedom the 99.9th percentile of chi-squared is ~37.7; a systematic
  // correlation between adjacent streams (e.g. a weak scramble that
  // leaves index structure in the seed) blows this up by orders of
  // magnitude.
  const Rng base(0xc0ffeeULL);
  const int kStreams = 64;
  const int kDraws = 256;
  const int kBins = 16;
  std::array<int, kBins> counts{};
  for (int s = 0; s < kStreams; ++s) {
    Rng stream = base.stream(static_cast<std::uint64_t>(s));
    for (int d = 0; d < kDraws; ++d) {
      const int bin = static_cast<int>(stream.uniform() * kBins);
      counts[std::min(bin, kBins - 1)]++;
    }
  }
  const double expected =
      static_cast<double>(kStreams) * kDraws / static_cast<double>(kBins);
  double chi2 = 0.0;
  for (const int c : counts) {
    const double diff = c - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.7);

  // Cross-stream correlation check: the first draw of stream k must not
  // track the first draw of stream k+1 (sample correlation near 0).
  std::vector<double> first(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    first[s] = base.stream(static_cast<std::uint64_t>(s)).uniform();
  }
  double mean = 0.0;
  for (const double v : first) mean += v;
  mean /= kStreams;
  double cov = 0.0, var = 0.0;
  for (int s = 0; s + 1 < kStreams; ++s) {
    cov += (first[s] - mean) * (first[s + 1] - mean);
  }
  for (const double v : first) var += (v - mean) * (v - mean);
  EXPECT_LT(std::abs(cov / var), 0.5);
}

TEST(Pow2, Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Pow2, FloorCeil) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(63), 32u);
  EXPECT_EQ(ceil_pow2(33), 64u);
  EXPECT_EQ(ceil_pow2(64), 64u);
  EXPECT_THROW(floor_pow2(0), Error);
}

TEST(Pow2, RoundArithmeticMidpoint) {
  // The PSA rounding rule: nearest power of two with the arithmetic
  // midpoint, so changes stay within [2/3, 4/3] (Theorem 2's factors).
  EXPECT_EQ(round_to_pow2(1.0), 1u);
  EXPECT_EQ(round_to_pow2(1.49), 1u);
  EXPECT_EQ(round_to_pow2(1.5), 2u);
  EXPECT_EQ(round_to_pow2(2.9), 2u);
  EXPECT_EQ(round_to_pow2(3.0), 4u);
  EXPECT_EQ(round_to_pow2(5.9), 4u);
  EXPECT_EQ(round_to_pow2(6.0), 8u);
  EXPECT_EQ(round_to_pow2(64.0), 64u);
}

TEST(Pow2, RoundStaysWithinTheoremFactors) {
  for (double x = 1.0; x < 200.0; x += 0.37) {
    const double r = static_cast<double>(round_to_pow2(x));
    EXPECT_GE(r, (2.0 / 3.0) * x - 1e-9) << "x=" << x;
    EXPECT_LE(r, (4.0 / 3.0) * x + 1e-9) << "x=" << x;
  }
}

TEST(Table, RendersAlignedCells) {
  AsciiTable t("Title");
  t.set_header({"a", "long header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide cell", "x", "y"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("wide cell"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t("t");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(AsciiTable::num(-0.5, 1), "-0.5");
}

TEST(AsciiPlotTest, RendersSeries) {
  AsciiPlot plot("demo", "x", "y");
  plot.add_series({"s1", {1, 2, 3, 4}, {1, 4, 9, 16}});
  const std::string s = plot.render();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("s1"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, MismatchedSeriesThrows) {
  AsciiPlot plot("demo", "x", "y");
  EXPECT_THROW(plot.add_series({"bad", {1, 2}, {1}}), Error);
}

TEST(ErrorMacros, CheckCarriesMessage) {
  try {
    PARADIGM_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace paradigm
