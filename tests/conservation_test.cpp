// Conservation-law property tests for the simulator's time and traffic
// accounting (SimResult::rank_busy / rank_blocked / traffic):
//   * per rank, busy + blocked == final clock (up to FP rounding), and
//     adding idle-at-end (finish - clock) tiles the full
//     finish_time x ranks rectangle exactly;
//   * per (src, dst) channel, messages and bytes obey
//     enqueued == consumed + suppressed + undelivered with exact
//     integer arithmetic — including fault-injected runs where drops
//     are retried (lost attempts are never enqueued), duplicates are
//     delivered twice and suppressed once, and crashes strand mail;
//   * the by-kind send-byte split (1D vs 2D redistribution) covers all
//     enqueued bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "codegen/mpmd.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace paradigm {
namespace {

core::PipelineConfig small_config(std::uint64_t p) {
  core::PipelineConfig config;
  config.processors = p;
  config.machine.size = static_cast<std::uint32_t>(p);
  config.machine.noise_sigma = 0.0;
  config.calibration.repetitions = 1;
  return config;
}

/// Generated MPMD program + machine for a graph on p ranks, via the
/// real pipeline (so the program contains genuine redistributions).
struct Scenario {
  mdg::Mdg graph;
  core::PipelineConfig config;
  sim::MpmdProgram program{0};

  Scenario(mdg::Mdg g, std::uint64_t p)
      : graph(std::move(g)), config(small_config(p)) {
    const core::Compiler compiler(config);
    core::PipelineReport report = compiler.compile_and_run(graph);
    program =
        codegen::generate_mpmd(graph, report.psa->schedule).program;
  }
};

void expect_time_conservation(const sim::SimResult& r) {
  const std::size_t ranks = r.rank_clock.size();
  ASSERT_EQ(r.rank_busy.size(), ranks);
  ASSERT_EQ(r.rank_blocked.size(), ranks);
  double tiled = 0.0;
  for (std::size_t rank = 0; rank < ranks; ++rank) {
    // Busy and blocked partition each rank's clock advance.
    EXPECT_NEAR(r.rank_busy[rank] + r.rank_blocked[rank],
                r.rank_clock[rank], 1e-9 * (1.0 + r.rank_clock[rank]))
        << "rank " << rank;
    EXPECT_LE(r.rank_clock[rank], r.finish_time + 1e-12);
    const double idle = r.finish_time - r.rank_clock[rank];
    tiled += r.rank_busy[rank] + r.rank_blocked[rank] + idle;
  }
  // Busy + blocked + idle tiles makespan x ranks.
  EXPECT_NEAR(tiled, r.finish_time * static_cast<double>(ranks),
              1e-9 * (1.0 + tiled));
  // rank_busy is the per-rank split of the existing busy total.
  const double busy_sum =
      std::accumulate(r.rank_busy.begin(), r.rank_busy.end(), 0.0);
  EXPECT_NEAR(busy_sum, r.total_busy, 1e-9 * (1.0 + r.total_busy));
}

void expect_traffic_conservation(const sim::SimResult& r) {
  std::size_t consumed_messages = 0;
  std::size_t consumed_bytes = 0;
  std::size_t enqueued_bytes = 0;
  std::size_t suppressed_messages = 0;
  for (const auto& [channel, t] : r.traffic) {
    EXPECT_EQ(t.messages_enqueued, t.messages_consumed +
                                       t.messages_suppressed +
                                       t.messages_undelivered)
        << "channel " << channel.first << "->" << channel.second;
    EXPECT_EQ(t.bytes_enqueued,
              t.bytes_consumed + t.bytes_suppressed + t.bytes_undelivered)
        << "channel " << channel.first << "->" << channel.second;
    consumed_messages += t.messages_consumed;
    consumed_bytes += t.bytes_consumed;
    enqueued_bytes += t.bytes_enqueued;
    suppressed_messages += t.messages_suppressed;
  }
  // The ledger agrees with the existing headline counters.
  EXPECT_EQ(consumed_messages, r.messages);
  EXPECT_EQ(consumed_bytes, r.message_bytes);
  EXPECT_EQ(suppressed_messages, r.duplicates_suppressed);
  // Every enqueued byte is classified by its redistribution kind.
  EXPECT_EQ(r.send_bytes_1d + r.send_bytes_2d, enqueued_bytes);
}

TEST(Conservation, FaultFreeRunTilesTimeAndConservesTraffic) {
  Scenario s(core::complex_matmul_mdg(16), 8);
  sim::Simulator simulator(s.config.machine);
  const sim::SimResult r = simulator.run(s.program);

  expect_time_conservation(r);
  expect_traffic_conservation(r);
  EXPECT_GT(r.messages, 0u);
  // Fault-free: nothing suppressed or stranded, no 2D traffic absent
  // from the ledger.
  for (const auto& [channel, t] : r.traffic) {
    EXPECT_EQ(t.messages_suppressed, 0u)
        << channel.first << "->" << channel.second;
    EXPECT_EQ(t.messages_undelivered, 0u)
        << channel.first << "->" << channel.second;
  }
}

// The mixed-layout variant forces row->col redistributions, so the 2D
// byte class is exercised too.
TEST(Conservation, MixedLayoutRunClassifies2dTraffic) {
  Scenario s(core::complex_matmul_mdg_mixed_layout(16), 8);
  sim::Simulator simulator(s.config.machine);
  const sim::SimResult r = simulator.run(s.program);
  expect_time_conservation(r);
  expect_traffic_conservation(r);
  EXPECT_GT(r.send_bytes_2d, 0u);
}

TEST(Conservation, DropsAndDuplicatesKeepTheLedgerExact) {
  Scenario s(core::complex_matmul_mdg(16), 8);
  sim::FaultPlan plan;
  plan.seed = 1994;
  plan.drop_probability = 0.15;
  plan.duplicate_probability = 0.15;

  sim::Simulator simulator(s.config.machine);
  const sim::SimResult r = simulator.run(s.program, plan);

  expect_time_conservation(r);
  expect_traffic_conservation(r);
  // The plan actually engaged both fault paths: retries are accounted
  // separately from the ledger (a dropped attempt is never enqueued),
  // and each suppressed duplicate was first enqueued as a second copy.
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u);
  EXPECT_GT(r.dropped_messages, 0u);
}

TEST(Conservation, CrashStrandsMailButBalancesTheLedger) {
  Scenario s(core::complex_matmul_mdg(16), 8);
  sim::Simulator clean(s.config.machine);
  const double fault_free = clean.run(s.program).finish_time;

  sim::FaultPlan plan;
  plan.seed = 7;
  plan.crashes.push_back(sim::CrashFault{1, 0.4 * fault_free});
  sim::Simulator simulator(s.config.machine);
  const sim::SimResult r = simulator.run(s.program, plan);

  ASSERT_TRUE(r.aborted);
  expect_time_conservation(r);
  expect_traffic_conservation(r);
  // Mail addressed to (or left unreceived by) dead/timed-out ranks is
  // accounted as undelivered, not silently dropped.
  std::size_t undelivered = 0;
  for (const auto& [channel, t] : r.traffic) {
    undelivered += t.messages_undelivered;
  }
  EXPECT_GT(undelivered, 0u);
}

}  // namespace
}  // namespace paradigm
