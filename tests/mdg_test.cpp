// Unit tests for the MDG representation: construction, validation,
// START/STOP insertion, topological order, longest path, DOT export,
// and the random-DAG generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mdg/dot.hpp"
#include "mdg/mdg.hpp"
#include "mdg/random_mdg.hpp"
#include "support/error.hpp"

namespace paradigm::mdg {
namespace {

Mdg diamond() {
  // a -> b, a -> c, b -> d, c -> d.
  Mdg g;
  const NodeId a = g.add_synthetic("a", 0.1, 1.0);
  const NodeId b = g.add_synthetic("b", 0.1, 2.0);
  const NodeId c = g.add_synthetic("c", 0.1, 3.0);
  const NodeId d = g.add_synthetic("d", 0.1, 4.0);
  g.add_synthetic_dependence(a, b, 1024);
  g.add_synthetic_dependence(a, c, 2048);
  g.add_synthetic_dependence(b, d, 512);
  g.add_synthetic_dependence(c, d, 256);
  g.finalize();
  return g;
}

TEST(Mdg, FinalizeInsertsStartStop) {
  const Mdg g = diamond();
  EXPECT_EQ(g.node_count(), 6u);  // 4 loops + START + STOP
  EXPECT_EQ(g.node(g.start()).kind, NodeKind::kStart);
  EXPECT_EQ(g.node(g.stop()).kind, NodeKind::kStop);
  // START precedes everything, STOP succeeds everything.
  EXPECT_TRUE(g.node(g.start()).in_edges.empty());
  EXPECT_TRUE(g.node(g.stop()).out_edges.empty());
}

TEST(Mdg, TopologicalOrderRespectsEdges) {
  const Mdg g = diamond();
  const auto& topo = g.topological_order();
  EXPECT_EQ(topo.size(), g.node_count());
  std::vector<std::size_t> position(g.node_count());
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (const auto& e : g.edges()) {
    EXPECT_LT(position[e.src], position[e.dst]);
  }
  EXPECT_EQ(topo.front(), g.start());
  EXPECT_EQ(topo.back(), g.stop());
}

TEST(Mdg, PredecessorsSuccessors) {
  const Mdg g = diamond();
  // Node "d" (id 3) has predecessors b (1) and c (2) plus edge to STOP.
  const auto preds = g.predecessors(3);
  EXPECT_EQ(preds.size(), 2u);
  EXPECT_TRUE(std::count(preds.begin(), preds.end(), 1u));
  EXPECT_TRUE(std::count(preds.begin(), preds.end(), 2u));
}

TEST(Mdg, CycleDetected) {
  Mdg g;
  const NodeId a = g.add_synthetic("a", 0.1, 1.0);
  const NodeId b = g.add_synthetic("b", 0.1, 1.0);
  g.add_synthetic_dependence(a, b, 0);
  g.add_synthetic_dependence(b, a, 0);
  EXPECT_THROW(g.finalize(), Error);
}

TEST(Mdg, SelfEdgeRejected) {
  Mdg g;
  const NodeId a = g.add_synthetic("a", 0.1, 1.0);
  EXPECT_THROW(g.add_synthetic_dependence(a, a, 0), Error);
}

TEST(Mdg, DuplicateArrayRejected) {
  Mdg g;
  g.add_array("X", 4, 4);
  EXPECT_THROW(g.add_array("X", 8, 8), Error);
}

TEST(Mdg, EdgeWithUnknownArrayRejected) {
  Mdg g;
  const NodeId a = g.add_synthetic("a", 0.1, 1.0);
  const NodeId b = g.add_synthetic("b", 0.1, 1.0);
  EXPECT_THROW(g.add_dependence(a, b, {"nope"}), Error);
}

TEST(Mdg, InputWithoutInEdgeRejected) {
  Mdg g;
  g.add_array("X", 4, 4);
  g.add_array("Y", 4, 4);
  LoopSpec init;
  init.op = LoopOp::kInit;
  init.output = "X";
  g.add_loop("init", init);
  LoopSpec consume;
  consume.op = LoopOp::kAdd;
  consume.inputs = {"X", "Y"};
  consume.output = "Y";  // also the producer of Y: self-referential
  g.add_loop("bad", consume);
  // No edge carries X into "bad".
  EXPECT_THROW(g.finalize(), Error);
}

TEST(Mdg, EdgeCarryingForeignArrayRejected) {
  Mdg g;
  g.add_array("X", 4, 4);
  LoopSpec init;
  init.op = LoopOp::kInit;
  init.output = "X";
  const NodeId a = g.add_loop("init", init);
  const NodeId b = g.add_synthetic("b", 0.1, 1.0);
  const NodeId c = g.add_synthetic("c", 0.1, 1.0);
  // Edge b -> c claims to carry X, but b does not produce X.
  g.add_dependence(b, c, {"X"});
  g.add_synthetic_dependence(a, b, 0);
  EXPECT_THROW(g.finalize(), Error);
}

TEST(Mdg, TwoProducersRejected) {
  Mdg g;
  g.add_array("X", 4, 4);
  LoopSpec init;
  init.op = LoopOp::kInit;
  init.output = "X";
  g.add_loop("p1", init);
  g.add_loop("p2", init);
  EXPECT_THROW(g.finalize(), Error);
}

TEST(Mdg, FinalizeTwiceRejected) {
  Mdg g = diamond();
  EXPECT_THROW(g.finalize(), Error);
}

TEST(Mdg, TransferBytesDerivedFromArrayTable) {
  Mdg g;
  g.add_array("X", 16, 8);
  LoopSpec init;
  init.op = LoopOp::kInit;
  init.output = "X";
  const NodeId a = g.add_loop("init", init);
  const NodeId b = g.add_synthetic("b", 0.1, 1.0);
  const EdgeId e = g.add_dependence(a, b, {"X"});
  EXPECT_EQ(g.edge(e).total_bytes(), 16u * 8u * sizeof(double));
}

TEST(Mdg, LongestPathDiamond) {
  const Mdg g = diamond();
  // Unit node weights for loops, zero for markers; edge weight = bytes.
  const auto finish = g.longest_path(
      [&](NodeId id) {
        return g.node(id).kind == NodeKind::kLoop ? 1.0 : 0.0;
      },
      [&](EdgeId e) {
        return static_cast<double>(g.edge(e).total_bytes()) * 1e-6;
      });
  // Critical path: START -> a -> c -> d -> STOP:
  // 1 + 0.002048 + 1 + 0.000256 + 1 = 3.002304.
  EXPECT_NEAR(finish[g.stop()], 3.002304, 1e-9);
}

TEST(Mdg, ProducerLookup) {
  Mdg g;
  g.add_array("X", 4, 4);
  LoopSpec init;
  init.op = LoopOp::kInit;
  init.output = "X";
  const NodeId a = g.add_loop("init", init);
  const NodeId b = g.add_synthetic("b", 0.1, 1.0);
  g.add_dependence(a, b, {"X"});
  g.finalize();
  EXPECT_EQ(g.producer_of("X"), a);
  EXPECT_THROW(g.producer_of("nope"), Error);
}

TEST(Dot, ExportContainsNodesAndEdges) {
  const Mdg g = diamond();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"a"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("1D"), std::string::npos);
}

TEST(Dot, AllocationAnnotation) {
  const Mdg g = diamond();
  const std::vector<double> alloc(g.node_count(), 4.0);
  const std::string dot = to_dot(g, alloc);
  EXPECT_NE(dot.find("p=4.00"), std::string::npos);
}

TEST(Dot, AllocationSizeMismatchThrows) {
  const Mdg g = diamond();
  EXPECT_THROW(to_dot(g, {1.0}), Error);
}

class RandomMdgTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMdgTest, GeneratedGraphsAreValidDags) {
  Rng rng(GetParam());
  const Mdg g = random_mdg(rng);
  EXPECT_TRUE(g.finalized());
  EXPECT_GE(g.node_count(), 6u);  // min 4 + START/STOP
  // Topological order exists and covers every node (acyclicity).
  const auto& topo = g.topological_order();
  EXPECT_EQ(std::set<NodeId>(topo.begin(), topo.end()).size(),
            g.node_count());
  // Every loop node reachable from START and reaching STOP.
  for (const auto& node : g.nodes()) {
    if (node.kind != NodeKind::kLoop) continue;
    EXPECT_FALSE(node.in_edges.empty()) << node.name;
    EXPECT_FALSE(node.out_edges.empty()) << node.name;
  }
}

TEST_P(RandomMdgTest, SyntheticParametersInRange) {
  Rng rng(GetParam() + 1000);
  RandomMdgConfig config;
  const Mdg g = random_mdg(rng, config);
  for (const auto& node : g.nodes()) {
    if (node.kind != NodeKind::kLoop) continue;
    EXPECT_GE(node.loop.synth_alpha, config.alpha_min);
    EXPECT_LE(node.loop.synth_alpha, config.alpha_max);
    EXPECT_GE(node.loop.synth_tau, config.tau_min);
    EXPECT_LE(node.loop.synth_tau, config.tau_max);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMdgTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace paradigm::mdg
