// Shared crash-test corpus and helpers (DESIGN §12, §14), used by both
// crash_soak_test.cpp (process-crash-at-every-boundary sweep) and
// storage_fault_test.cpp (ALICE-style power-loss / storage-fault
// sweep). Keeping one definition guarantees the two suites prove their
// contracts against the *same* 50-job service workload.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/wal.hpp"
#include "svc/persist.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {

/// Deterministic mixed corpus (≥50 jobs): clean runs, pathological
/// graphs (breaker food), oversized submissions, deadline-doomed work,
/// alternating classes — the same shape as the DESIGN §11 soak, sized
/// so the crash-at-every-boundary sweep stays tractable.
inline std::vector<JobSpec> crash_corpus() {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 50; ++i) {
    JobSpec spec;
    spec.id = "c";
    spec.id += std::to_string(i);
    spec.seed = 2000 + i;
    spec.arrival = i * 30;
    spec.processors = (i % 3 == 0) ? 4 : 8;
    spec.nodes = 6 + (i % 4);
    spec.job_class = (i % 4 == 0) ? "alt" : "default";
    switch (i % 10) {
      case 3:
        spec.graph = GraphKind::kPathological;
        spec.seed = 1 + (i % 7);
        spec.processors = 5;  // Not a power of two: hard failure, feeds the breaker.
        spec.arrival = i;     // Early arrival: fails before the drain cutoff.
        break;
      case 5:
        spec.nodes = 4096;  // Rejected oversized.
        break;
      case 7:
        spec.deadline = 20 + (i % 13);  // Deadline-doomed.
        break;
      default:
        break;
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

/// Cheap pipeline settings: the sweeps run O(records × jobs) pipeline
/// attempts, so each attempt is kept as small as determinism allows.
inline ServiceConfig crash_config() {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 10;
  config.pipeline.solver.continuation_rounds = 1;
  config.queue_capacity = 6;
  config.slots = 2;
  config.max_nodes = 512;
  config.default_deadline = 30000;
  config.max_retries = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 400;
  return config;
}

inline constexpr std::uint64_t kCrashDrainAt = 1200;
inline constexpr std::uint64_t kCrashDrainGrace = 6000;
/// Snapshots land mid-run, so the sweeps also crash inside snapshot
/// writes and recover through (and from) snapshots. The serial corpus
/// executes only ~19 pipeline runs (breaker trips and the drain cutoff
/// eat the rest), so the cadence must sit well below that — at the
/// historical 24 no snapshot was ever attempted and every
/// snapshot-publish claim in these sweeps was vacuous.
inline constexpr std::size_t kCrashSnapshotEvery = 8;

/// Submits the full corpus every run — including recovery runs. The
/// client re-offering its inputs is the crash-quiescence contract:
/// Persistence::begin_run prefix-checks them against the journaled
/// submissions and journals only the not-yet-durable tail, so a crash
/// mid-submission still recovers to the crash-free ledger.
inline ServiceReport run_crash_service(Persistence* persist) {
  Service service(crash_config());
  for (JobSpec& spec : crash_corpus()) service.submit(std::move(spec));
  service.drain_at(kCrashDrainAt, kCrashDrainGrace);
  if (persist != nullptr) service.attach_persistence(persist);
  return service.run();
}

/// Compact duplicate-heavy corpus for cache-enabled sweeps: six
/// distinct templates spread over 24 jobs (same-instant duplicate
/// bursts for coalescing, staggered repeats for cache hits), plus one
/// oversized rejection and one deadline-doomed job so non-executing
/// outcomes stay in the boundary space.
inline std::vector<JobSpec> cache_crash_corpus() {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 24; ++i) {
    JobSpec spec;
    spec.id = "k";
    spec.id += std::to_string(i);
    // Jobs 0..3 are four identical same-instant copies of template 0
    // (the coalescing burst); the rest cycle the six templates.
    const std::size_t tmpl = i < 4 ? 0 : i % 6;
    spec.seed = 3000 + tmpl;
    spec.nodes = 5 + tmpl % 3;
    spec.processors = tmpl < 3 ? 4 : 8;
    spec.arrival = i < 4 ? 0 : 400 + i * 60;
    if (i == 20) spec.nodes = 4096;      // Rejected oversized.
    if (i == 21) spec.deadline = 5;      // Deadline-doomed.
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

inline ServiceConfig cache_crash_config() {
  ServiceConfig config = crash_config();
  config.slots = 4;
  config.queue_capacity = 25;
  config.cache.enabled = true;
  return config;
}

inline ServiceReport run_cached_crash_service(Persistence* persist) {
  Service service(cache_crash_config());
  for (JobSpec& spec : cache_crash_corpus()) service.submit(std::move(spec));
  if (persist != nullptr) service.attach_persistence(persist);
  return service.run();
}

/// Asserts the journal holds exactly one exec digest per (job index,
/// attempt) — the on-disk half of the exactly-once contract.
inline void assert_unique_exec_records(const std::string& journal_path) {
  const wal::ReadResult read = wal::read_journal(journal_path);
  std::set<std::string> exec_keys;
  for (const std::string& record : read.records) {
    if (record.rfind("exec ", 0) != 0) continue;
    std::istringstream in(record);
    std::string tag, index, attempt;
    in >> tag >> index >> attempt;
    const std::string key = index + "/" + attempt;
    EXPECT_TRUE(exec_keys.insert(key).second)
        << "duplicate exec digest " << key << " in " << journal_path;
  }
}

/// Asserts one terminal ledger record per (id, attempt).
inline void assert_unique_ledger_records(const std::string& ledger) {
  std::set<std::string> keys;
  std::istringstream in(ledger);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string job, attempt;
    fields >> job >> attempt;
    EXPECT_TRUE(keys.insert(job + "/" + attempt).second)
        << "duplicate ledger record: " << line;
  }
}

/// On failure, copies the journal directory to the CI artifact
/// directory (PARADIGM_RECOVERY_ARTIFACT_DIR) so the exact crash
/// boundary can be replayed offline. `schedule` (optional) is written
/// alongside as fault-schedule.txt — the seed + per-boundary plan that
/// produced the failing state, so the artifact alone reproduces it.
inline void archive_on_failure(const std::filesystem::path& dir,
                               const std::string& tag,
                               const std::string& schedule = std::string()) {
  const char* artifact_dir = std::getenv("PARADIGM_RECOVERY_ARTIFACT_DIR");
  if (artifact_dir == nullptr || artifact_dir[0] == '\0') return;
  std::error_code ec;
  const std::filesystem::path dest = std::filesystem::path(artifact_dir) / tag;
  std::filesystem::create_directories(dest, ec);
  std::filesystem::copy(dir, dest,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing,
                        ec);
  if (!schedule.empty()) {
    std::ofstream out(dest / "fault-schedule.txt");
    out << schedule;
  }
}

}  // namespace paradigm::svc
