// Tests for per-node processor caps: the solvers keep capped nodes
// inside their boxes, the PSA enforces power-of-two-within-cap
// allocations, and capping can only worsen (or preserve) Phi.
#include <gtest/gtest.h>

#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "solver/lbfgs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm {
namespace {

mdg::Mdg capped_figure1(std::size_t cap_n1) {
  mdg::Mdg graph;
  const mdg::NodeId n1 = graph.add_synthetic("N1", 23.0 / 450.0, 30.0);
  const mdg::NodeId n2 = graph.add_synthetic("N2", 0.13, 10.0);
  const mdg::NodeId n3 = graph.add_synthetic("N3", 0.13, 10.0);
  graph.add_synthetic_dependence(n1, n2, 0);
  graph.add_synthetic_dependence(n1, n3, 0);
  graph.set_processor_cap(n1, cap_n1);
  graph.finalize();
  return graph;
}

TEST(Caps, SetterValidation) {
  mdg::Mdg graph;
  const mdg::NodeId a = graph.add_synthetic("a", 0.1, 1.0);
  graph.set_processor_cap(a, 4);
  EXPECT_EQ(graph.node(a).loop.max_processors, 4u);
  graph.finalize();
  EXPECT_THROW(graph.set_processor_cap(a, 2), Error);  // after finalize
}

TEST(Caps, SolversRespectCap) {
  const mdg::Mdg graph = capped_figure1(2);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  for (const auto& result :
       {solver::ConvexAllocator{}.allocate(model, 16.0),
        solver::LbfgsAllocator{}.allocate(model, 16.0)}) {
    EXPECT_LE(result.allocation[0], 2.0 + 1e-9);  // N1 capped
    EXPECT_GT(result.allocation[1], 1.0);         // others free
  }
}

TEST(Caps, CappingWorsensPhi) {
  const mdg::Mdg free_graph = core::figure1_example();
  const mdg::Mdg capped = capped_figure1(2);
  const cost::CostModel free_model(free_graph, cost::MachineParams{},
                                   cost::KernelCostTable{});
  const cost::CostModel capped_model(capped, cost::MachineParams{},
                                     cost::KernelCostTable{});
  const double phi_free =
      solver::ConvexAllocator{}.allocate(free_model, 4.0).phi;
  const double phi_capped =
      solver::ConvexAllocator{}.allocate(capped_model, 4.0).phi;
  // N1 capped at 2 forces t1 >= (a + (1-a)/2) tau = 15.85 > 14.3.
  EXPECT_GT(phi_capped, phi_free * 1.05);
}

TEST(Caps, PsaClampsToLargestPowerOfTwoInsideCap) {
  // Cap of 6 must yield an allocation of at most 4 (floor pow2).
  mdg::Mdg graph;
  const mdg::NodeId a = graph.add_synthetic("a", 0.05, 5.0);
  const mdg::NodeId b = graph.add_synthetic("b", 0.05, 5.0);
  graph.add_synthetic_dependence(a, b, 0);
  graph.set_processor_cap(a, 6);
  graph.finalize();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 16);
  psa.schedule.validate(model);
  EXPECT_LE(psa.allocation[a], 4u);
  EXPECT_GT(psa.allocation[b], psa.allocation[a]);
}

TEST(Caps, ApplyProcessorCapsHelper) {
  mdg::Mdg graph;
  const mdg::NodeId a = graph.add_synthetic("a", 0.1, 1.0);
  const mdg::NodeId b = graph.add_synthetic("b", 0.1, 1.0);
  graph.add_synthetic_dependence(a, b, 0);
  graph.set_processor_cap(a, 3);
  graph.finalize();
  std::vector<std::uint64_t> alloc(graph.node_count(), 8);
  alloc = sched::apply_processor_caps(std::move(alloc), graph);
  EXPECT_EQ(alloc[a], 2u);  // floor pow2 of 3
  EXPECT_EQ(alloc[b], 8u);
}

TEST(Caps, RandomGraphsNeverExceedCaps) {
  Rng rng(808);
  for (int trial = 0; trial < 5; ++trial) {
    mdg::Mdg graph = [&] {
      mdg::RandomMdgConfig config;
      config.min_nodes = 6;
      config.max_nodes = 12;
      Rng local = rng.fork(trial);
      return mdg::random_mdg(local, config);
    }();
    // Rebuild with caps is awkward post-finalize; instead build a fresh
    // capped graph by hand.
    mdg::Mdg capped;
    std::vector<std::size_t> caps;
    for (const auto& node : graph.nodes()) {
      if (node.kind != mdg::NodeKind::kLoop) continue;
      capped.add_synthetic(node.name, node.loop.synth_alpha,
                           node.loop.synth_tau);
      const std::size_t cap = 1 + (node.id % 3) * 3;  // 1, 4, 7, ...
      capped.set_processor_cap(node.id, cap);
      caps.push_back(cap);
    }
    for (const auto& edge : graph.edges()) {
      if (graph.node(edge.src).kind != mdg::NodeKind::kLoop ||
          graph.node(edge.dst).kind != mdg::NodeKind::kLoop) {
        continue;
      }
      capped.add_synthetic_dependence(edge.src, edge.dst,
                                      edge.total_bytes());
    }
    capped.finalize();
    const cost::CostModel model(capped, cost::MachineParams{},
                                cost::KernelCostTable{});
    const auto alloc = solver::ConvexAllocator{}.allocate(model, 32.0);
    const sched::PsaResult psa =
        sched::prioritized_schedule(model, alloc.allocation, 32);
    psa.schedule.validate(model);
    for (std::size_t i = 0; i < caps.size(); ++i) {
      EXPECT_LE(psa.allocation[i], caps[i]) << "node " << i;
    }
  }
}

}  // namespace
}  // namespace paradigm
