// Allocation-cache unit suite (DESIGN §13): the canonical MDG hash
// (isomorphism-invariant, semantics-sensitive), the cost-policy
// digests, the LRU result cache's eviction/validity rules, and the
// warm-start neighbor index (including the evicted-neighbor fallback).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cost/hash.hpp"
#include "mdg/hash.hpp"
#include "mdg/random_mdg.hpp"
#include "svc/cache.hpp"

namespace paradigm {
namespace {

// ---- canonical MDG hashing ----------------------------------------------

/// The three-loop program A=init, B=init, C=A*B, parameterized by every
/// label so isomorphic rebuilds can permute node insertion order and
/// rename everything.
mdg::Mdg matmul_graph(bool swap_insertion, const std::string& prefix) {
  mdg::Mdg g;
  g.add_array(prefix + "A", 64, 64, 1);
  g.add_array(prefix + "B", 64, 64, 2);
  g.add_array(prefix + "C", 64, 64, 0);
  mdg::LoopSpec init_a;
  init_a.op = mdg::LoopOp::kInit;
  init_a.output = prefix + "A";
  init_a.layout = mdg::Layout::kRow;
  mdg::LoopSpec init_b;
  init_b.op = mdg::LoopOp::kInit;
  init_b.output = prefix + "B";
  init_b.layout = mdg::Layout::kRow;
  mdg::LoopSpec mul;
  mul.op = mdg::LoopOp::kMul;
  mul.inputs = {prefix + "A", prefix + "B"};
  mul.output = prefix + "C";
  mul.layout = mdg::Layout::kCol;
  mdg::NodeId na = 0;
  mdg::NodeId nb = 0;
  if (swap_insertion) {
    nb = g.add_loop(prefix + "second", init_b);
    na = g.add_loop(prefix + "first", init_a);
  } else {
    na = g.add_loop(prefix + "first", init_a);
    nb = g.add_loop(prefix + "second", init_b);
  }
  const mdg::NodeId nc = g.add_loop(prefix + "consumer", mul);
  if (swap_insertion) {
    g.add_dependence(nb, nc, {prefix + "B"});
    g.add_dependence(na, nc, {prefix + "A"});
  } else {
    g.add_dependence(na, nc, {prefix + "A"});
    g.add_dependence(nb, nc, {prefix + "B"});
  }
  g.finalize();
  return g;
}

TEST(MdgHash, PermutedAndRelabeledBuildsHashEqual) {
  const mdg::MdgDigest base = mdg::content_digest(matmul_graph(false, ""));
  const mdg::MdgDigest permuted =
      mdg::content_digest(matmul_graph(true, ""));
  const mdg::MdgDigest relabeled =
      mdg::content_digest(matmul_graph(true, "zz_"));
  EXPECT_EQ(base, permuted);
  EXPECT_EQ(base, relabeled);
  EXPECT_NE(base.content, 0u);
  EXPECT_NE(base.shape, 0u);
}

/// Synthetic diamond s -> {m1, m2} -> t, parameterized by weights and
/// insertion order.
mdg::Mdg diamond(double alpha1, double tau1, double alpha2, double tau2,
                 std::size_t bytes, bool swap_insertion,
                 std::size_t cap_m1 = 0) {
  mdg::Mdg g;
  const mdg::NodeId s = g.add_synthetic("s", 0.1, 1.0);
  mdg::NodeId m1 = 0;
  mdg::NodeId m2 = 0;
  if (swap_insertion) {
    m2 = g.add_synthetic("m2", alpha2, tau2);
    m1 = g.add_synthetic("m1", alpha1, tau1);
  } else {
    m1 = g.add_synthetic("m1", alpha1, tau1);
    m2 = g.add_synthetic("m2", alpha2, tau2);
  }
  const mdg::NodeId t = g.add_synthetic("t", 0.2, 2.0);
  if (cap_m1 > 0) g.set_processor_cap(m1, cap_m1);
  g.add_synthetic_dependence(s, m1, bytes);
  g.add_synthetic_dependence(s, m2, bytes);
  g.add_synthetic_dependence(m1, t, bytes);
  g.add_synthetic_dependence(m2, t, bytes);
  g.finalize();
  return g;
}

TEST(MdgHash, SemanticEditsChangeContent) {
  const mdg::MdgDigest base =
      mdg::content_digest(diamond(0.1, 4.0, 0.3, 2.0, 1024, false));
  // Insertion order is not semantic — even with distinct weights.
  EXPECT_EQ(base,
            mdg::content_digest(diamond(0.1, 4.0, 0.3, 2.0, 1024, true)));
  // A weight edit changes content but not shape.
  const mdg::MdgDigest tau_edit =
      mdg::content_digest(diamond(0.1, 5.0, 0.3, 2.0, 1024, false));
  EXPECT_NE(base.content, tau_edit.content);
  EXPECT_EQ(base.shape, tau_edit.shape);
  // So does a transfer-size edit.
  const mdg::MdgDigest byte_edit =
      mdg::content_digest(diamond(0.1, 4.0, 0.3, 2.0, 2048, false));
  EXPECT_NE(base.content, byte_edit.content);
  EXPECT_EQ(base.shape, byte_edit.shape);
  // And a per-node processor cap.
  const mdg::MdgDigest cap_edit =
      mdg::content_digest(diamond(0.1, 4.0, 0.3, 2.0, 1024, false, 2));
  EXPECT_NE(base.content, cap_edit.content);
  EXPECT_EQ(base.shape, cap_edit.shape);
  // Swapping the weights of two topologically symmetric nodes IS an
  // isomorphism: the multiset of (weight, position) pairs is unchanged.
  EXPECT_EQ(base,
            mdg::content_digest(diamond(0.3, 2.0, 0.1, 4.0, 1024, false)));
}

TEST(MdgHash, StructureEditsChangeShape) {
  // Chain a -> b -> c vs fork a -> {b, c}: same node multiset,
  // different topology — both digests must differ.
  mdg::Mdg chain;
  {
    const auto a = chain.add_synthetic("a", 0.1, 1.0);
    const auto b = chain.add_synthetic("b", 0.1, 1.0);
    const auto c = chain.add_synthetic("c", 0.1, 1.0);
    chain.add_synthetic_dependence(a, b, 64);
    chain.add_synthetic_dependence(b, c, 64);
    chain.finalize();
  }
  mdg::Mdg fork;
  {
    const auto a = fork.add_synthetic("a", 0.1, 1.0);
    const auto b = fork.add_synthetic("b", 0.1, 1.0);
    const auto c = fork.add_synthetic("c", 0.1, 1.0);
    fork.add_synthetic_dependence(a, b, 64);
    fork.add_synthetic_dependence(a, c, 64);
    fork.finalize();
  }
  const mdg::MdgDigest dc = mdg::content_digest(chain);
  const mdg::MdgDigest df = mdg::content_digest(fork);
  EXPECT_NE(dc.content, df.content);
  EXPECT_NE(dc.shape, df.shape);

  // A transfer-kind edit (1D -> 2D) is structural.
  mdg::Mdg kind;
  {
    const auto a = kind.add_synthetic("a", 0.1, 1.0);
    const auto b = kind.add_synthetic("b", 0.1, 1.0);
    const auto c = kind.add_synthetic("c", 0.1, 1.0);
    kind.add_synthetic_dependence(a, b, 64, mdg::TransferKind::k2D);
    kind.add_synthetic_dependence(b, c, 64);
    kind.finalize();
  }
  const mdg::MdgDigest dk = mdg::content_digest(kind);
  EXPECT_NE(dc.content, dk.content);
  EXPECT_NE(dc.shape, dk.shape);
}

TEST(MdgHash, RandomGraphsRebuildStablyAndSeparate) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    mdg::RandomMdgConfig rc;
    rc.min_nodes = 6;
    rc.max_nodes = 12;
    Rng rng1(seed);
    Rng rng2(seed);
    const mdg::MdgDigest d1 = mdg::content_digest(random_mdg(rng1, rc));
    const mdg::MdgDigest d2 = mdg::content_digest(random_mdg(rng2, rc));
    EXPECT_EQ(d1, d2) << "seed " << seed;
    Rng rng3(seed + 1000);
    const mdg::MdgDigest d3 = mdg::content_digest(random_mdg(rng3, rc));
    EXPECT_NE(d1.content, d3.content) << "seed " << seed;
  }
}

// ---- cost-policy hashing -------------------------------------------------

TEST(CostHash, MachineAndKernelParamsAreContentSensitive) {
  cost::MachineParams m1;
  cost::MachineParams m2;
  EXPECT_EQ(cost::hash_value(m1), cost::hash_value(m2));
  m2.t_ss *= 1.0000001;
  EXPECT_NE(cost::hash_value(m1), cost::hash_value(m2));

  cost::KernelCostTable t1;
  cost::KernelCostTable t2;
  EXPECT_EQ(cost::hash_value(t1), cost::hash_value(t2));
  cost::KernelKey key;
  key.op = mdg::LoopOp::kMul;
  key.rows = 64;
  key.cols = 64;
  key.inner = 64;
  t1.set(key, {0.1, 2.0});
  EXPECT_NE(cost::hash_value(t1), cost::hash_value(t2));
  t2.set(key, {0.1, 2.0});
  EXPECT_EQ(cost::hash_value(t1), cost::hash_value(t2));
  t2.set(key, {0.1, 2.5});  // Same key, different fit.
  EXPECT_NE(cost::hash_value(t1), cost::hash_value(t2));
}

TEST(CostHash, PolicyDigestCoversMachineSolverAndPolicy) {
  const core::PipelineConfig base;
  const std::uint64_t d0 = svc::policy_digest(base);
  EXPECT_EQ(d0, svc::policy_digest(base));  // Pure function.

  core::PipelineConfig machine_edit = base;
  machine_edit.machine.flop_time *= 2.0;
  EXPECT_NE(d0, svc::policy_digest(machine_edit));

  core::PipelineConfig solver_edit = base;
  solver_edit.solver.start_seed ^= 1;
  EXPECT_NE(d0, svc::policy_digest(solver_edit));

  core::PipelineConfig policy_edit = base;
  policy_edit.degradation.tau_limit *= 10.0;
  EXPECT_NE(d0, svc::policy_digest(policy_edit));

  core::PipelineConfig mode_edit = base;
  mode_edit.calibration_mode = core::CalibrationMode::kStatic;
  EXPECT_NE(d0, svc::policy_digest(mode_edit));

  core::PipelineConfig sim_edit = base;
  sim_edit.run_simulation = false;
  EXPECT_NE(d0, svc::policy_digest(sim_edit));

  // The machine *size* is deliberately job-effective, not policy.
  core::PipelineConfig size_edit = base;
  size_edit.machine.size *= 2;
  EXPECT_EQ(d0, svc::policy_digest(size_edit));
}

// ---- result cache --------------------------------------------------------

svc::CacheKey key_of(std::uint64_t n) {
  svc::CacheKey k;
  k.hi = n;
  k.lo = ~n;
  return k;
}

core::RunMemo memo_of(double phi, std::uint64_t ticks) {
  core::RunMemo m;
  m.phi = phi;
  m.ticks = ticks;
  return m;
}

TEST(ResultCache, LruEvictionFollowsRecency) {
  svc::ResultCache cache(2);
  cache.insert(key_of(1), 11, memo_of(1.0, 10), {1.0});
  cache.insert(key_of(2), 22, memo_of(2.0, 10), {2.0});
  // Touch 1 so 2 becomes the LRU victim.
  ASSERT_NE(cache.lookup(key_of(1), 0), nullptr);
  cache.insert(key_of(3), 33, memo_of(3.0, 10), {3.0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup(key_of(1), 0), nullptr);
  EXPECT_EQ(cache.lookup(key_of(2), 0), nullptr);
  EXPECT_NE(cache.lookup(key_of(3), 0), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, CapValidityRule) {
  svc::ResultCache cache(4);
  cache.insert(key_of(1), 11, memo_of(1.0, 100), {});
  // Uncapped and strictly-larger caps serve the memo; a cap the run
  // would have tripped does not.
  EXPECT_NE(cache.lookup(key_of(1), 0), nullptr);
  EXPECT_NE(cache.lookup(key_of(1), 101), nullptr);
  EXPECT_EQ(cache.lookup(key_of(1), 100), nullptr);
  EXPECT_EQ(cache.lookup(key_of(1), 50), nullptr);
}

TEST(ResultCache, CancelledResultsNeverEnter) {
  svc::ResultCache cache(4);
  core::RunMemo cancelled = memo_of(0.0, 40);
  cancelled.cancelled = true;
  cancelled.reason = CancelReason::kDeadline;
  cache.insert(key_of(1), 11, cancelled, {});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(key_of(1), 0), nullptr);
}

TEST(ResultCache, WarmStartNeighborAndEvictionFallback) {
  svc::ResultCache cache(1);
  cache.insert(key_of(1), 77, memo_of(1.0, 10), {1.0, 2.0, 3.0});
  const svc::CacheEntry* n = cache.nearest(77);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->allocation.size(), 3u);
  // A different-shape insert evicts the neighbor (capacity 1): the
  // shape index now points at a ghost and nearest() must report the
  // cold-start fallback, not a dangling entry.
  cache.insert(key_of(2), 88, memo_of(2.0, 10), {4.0});
  EXPECT_EQ(cache.nearest(77), nullptr);
  ASSERT_NE(cache.nearest(88), nullptr);
}

TEST(ResultCache, JobKeySeparatesEnvelope) {
  const mdg::MdgDigest d{123, 456};
  const svc::CacheKey base = svc::job_cache_key(1, d, 16, 16, 1, 0);
  EXPECT_EQ(base, svc::job_cache_key(1, d, 16, 16, 1, 0));
  EXPECT_NE(base, svc::job_cache_key(2, d, 16, 16, 1, 0));  // policy
  EXPECT_NE(base, svc::job_cache_key(1, d, 32, 32, 1, 0));  // p
  EXPECT_NE(base, svc::job_cache_key(1, d, 16, 32, 1, 0));  // machine
  EXPECT_NE(base, svc::job_cache_key(1, d, 16, 16, 2, 0));  // attempt
  EXPECT_NE(base, svc::job_cache_key(1, d, 16, 16, 1, 9));  // stall
  const mdg::MdgDigest d2{124, 456};
  EXPECT_NE(base, svc::job_cache_key(1, d2, 16, 16, 1, 0));  // content
  // The shape key ignores the content half and the attempt number.
  EXPECT_EQ(svc::job_shape_key(1, d, 16, 16, 0),
            svc::job_shape_key(1, d2, 16, 16, 0));
}

}  // namespace
}  // namespace paradigm
