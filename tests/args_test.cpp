// Tests for the command-line argument parser used by tools/.
#include <gtest/gtest.h>

#include "support/args.hpp"
#include "support/error.hpp"

namespace paradigm {
namespace {

ArgParser make_parser() {
  ArgParser args("test tool");
  args.add_option("name", "default", "a string");
  args.add_option("count", "3", "an integer");
  args.add_option("rate", "0.5", "a double");
  args.add_flag("verbose", "a flag");
  return args;
}

TEST(Args, DefaultsApply) {
  ArgParser args = make_parser();
  args.parse({});
  EXPECT_EQ(args.get("name"), "default");
  EXPECT_EQ(args.get_int("count"), 3);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.5);
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(Args, EqualsSyntax) {
  ArgParser args = make_parser();
  args.parse({"--name=hello", "--count=42", "--rate=1.25", "--verbose"});
  EXPECT_EQ(args.get("name"), "hello");
  EXPECT_EQ(args.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 1.25);
  EXPECT_TRUE(args.get_flag("verbose"));
}

TEST(Args, SpaceSyntax) {
  ArgParser args = make_parser();
  args.parse({"--name", "world", "--count", "-7"});
  EXPECT_EQ(args.get("name"), "world");
  EXPECT_EQ(args.get_int("count"), -7);
}

TEST(Args, Positionals) {
  ArgParser args = make_parser();
  args.parse({"first", "--name=x", "second"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(Args, UnknownOptionRejected) {
  ArgParser args = make_parser();
  // Usage mistakes are UsageError (tools exit 2), still an Error for
  // legacy catch sites.
  EXPECT_THROW(args.parse({"--nonsense=1"}), UsageError);
  EXPECT_THROW(args.parse({"--nonsense=1"}), Error);
}

TEST(Args, MissingValueRejected) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"--name"}), UsageError);
}

TEST(Args, FlagValueRejected) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"--verbose=yes"}), UsageError);
}

TEST(Args, MalformedNumbersAreUsageErrors) {
  ArgParser args = make_parser();
  args.parse({"--count=banana", "--rate=1.2.3"});
  EXPECT_THROW(args.get_int("count"), UsageError);
  EXPECT_THROW(args.get_double("rate"), UsageError);
}

TEST(Args, FlagWithValueRejected) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"--verbose=true"}), Error);
}

TEST(Args, NonNumericRejected) {
  ArgParser args = make_parser();
  args.parse({"--count=twelve"});
  EXPECT_THROW(args.get_int("count"), Error);
  args = make_parser();
  args.parse({"--rate=fast"});
  EXPECT_THROW(args.get_double("rate"), Error);
}

TEST(Args, UndeclaredAccessRejected) {
  ArgParser args = make_parser();
  args.parse({});
  EXPECT_THROW(args.get("nope"), Error);
  EXPECT_THROW(args.get_flag("name"), Error);  // not a flag
}

TEST(Args, DuplicateDeclarationRejected) {
  ArgParser args("t");
  args.add_option("x", "", "h");
  EXPECT_THROW(args.add_option("x", "", "h"), Error);
}

TEST(Args, UsageListsOptions) {
  const ArgParser args = make_parser();
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
  EXPECT_NE(usage.find("a flag"), std::string::npos);
}

TEST(Args, LastValueWins) {
  ArgParser args = make_parser();
  args.parse({"--name=a", "--name=b"});
  EXPECT_EQ(args.get("name"), "b");
}

}  // namespace
}  // namespace paradigm
