// Tests for MPMD code generation: numerical correctness of generated
// programs (complex matmul, Strassen) under both SPMD and PSA
// schedules, no-op redistribution elision, message accounting against
// the plans, deadlock freedom over random graphs, and agreement between
// schedule predictions and noise-free simulated execution.
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/rng.hpp"

namespace paradigm::codegen {
namespace {

/// Cost model whose parameters exactly mirror a machine config, so
/// schedule predictions and noise-free simulation agree up to the
/// residual modeling error (group overheads, barrier skew, net latency).
cost::MachineParams mirror_params(const sim::MachineConfig& mc) {
  cost::MachineParams mp;
  mp.t_ss = mc.send_startup;
  mp.t_ps = mc.send_per_byte;
  mp.t_sr = mc.recv_startup;
  mp.t_pr = mc.recv_per_byte;
  mp.t_n = 0.0;
  return mp;
}

cost::KernelCostTable mirror_table(const sim::MachineConfig& mc,
                                   const mdg::Mdg& graph) {
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop ||
        node.loop.op == mdg::LoopOp::kSynthetic) {
      continue;
    }
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (table.contains(key)) continue;
    // Exact Amdahl parameters of the simulator's kernel model,
    // ignoring the per-processor overhead term.
    const double seq =
        mc.sequential_seconds(key.op, key.rows, key.cols, key.inner);
    table.set(key,
              cost::AmdahlParams{mc.timing_for(key.op).serial_fraction,
                                 seq});
  }
  return table;
}

sim::MachineConfig quiet_machine(std::uint32_t size) {
  sim::MachineConfig mc;
  mc.size = size;
  mc.noise_sigma = 0.0;
  return mc;
}

TEST(Codegen, SpmdComplexMatmulHasNoMessagesAndCorrectResult) {
  const std::size_t n = 32;
  const mdg::Mdg graph = core::complex_matmul_mdg(n);
  const sim::MachineConfig mc = quiet_machine(4);
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const sched::Schedule spmd = sched::spmd_schedule(model, 4);
  const GeneratedProgram generated = generate_mpmd(graph, spmd);
  // Every redistribution is same-group row->row: all elided.
  EXPECT_EQ(generated.planned_messages, 0u);
  EXPECT_GT(generated.skipped_noop_redistributions, 0u);

  sim::Simulator simulator(mc);
  const sim::SimResult result = simulator.run(generated.program);
  EXPECT_EQ(result.messages, 0u);
  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-11);
  EXPECT_LT(simulator.assemble_array("Ci", n, n).max_abs_diff(ref.ci),
            1e-11);
}

TEST(Codegen, PsaComplexMatmulMovesDataAndStaysCorrect) {
  const std::size_t n = 32;
  const mdg::Mdg graph = core::complex_matmul_mdg(n);
  const sim::MachineConfig mc = quiet_machine(8);
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 8.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 8);
  const GeneratedProgram generated = generate_mpmd(graph, psa.schedule);
  EXPECT_GT(generated.planned_messages, 0u);

  sim::Simulator simulator(mc);
  const sim::SimResult result = simulator.run(generated.program);
  EXPECT_EQ(result.messages, generated.planned_messages);
  EXPECT_EQ(result.message_bytes, generated.planned_bytes);
  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-11);
  EXPECT_LT(simulator.assemble_array("Ci", n, n).max_abs_diff(ref.ci),
            1e-11);
}

TEST(Codegen, StrassenNumericallyCorrectUnderPsa) {
  const std::size_t n = 32;
  const std::size_t h = n / 2;
  const mdg::Mdg graph = core::strassen_mdg(n);
  const sim::MachineConfig mc = quiet_machine(8);
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 8.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 8);
  psa.schedule.validate(model);
  const GeneratedProgram generated = generate_mpmd(graph, psa.schedule);

  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const auto ref = core::strassen_reference(n);
  EXPECT_LT(simulator.assemble_array("C11", h, h).max_abs_diff(ref.c11),
            1e-10);
  EXPECT_LT(simulator.assemble_array("C12", h, h).max_abs_diff(ref.c12),
            1e-10);
  EXPECT_LT(simulator.assemble_array("C21", h, h).max_abs_diff(ref.c21),
            1e-10);
  EXPECT_LT(simulator.assemble_array("C22", h, h).max_abs_diff(ref.c22),
            1e-10);
}

TEST(Codegen, SerialScheduleMatchesSequentialReference) {
  const std::size_t n = 16;
  const mdg::Mdg graph = core::complex_matmul_mdg(n);
  const sim::MachineConfig mc = quiet_machine(1);
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const sched::Schedule serial = sched::spmd_schedule(model, 1);
  const GeneratedProgram generated = generate_mpmd(graph, serial);
  EXPECT_EQ(generated.planned_messages, 0u);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-12);
}

TEST(Codegen, MixedLayoutProgramUses2DTransfersAndStaysCorrect) {
  // The combine loops use a column layout, so the T -> combine edges
  // are 2D (ROW2COL). Executing it must move real data through the
  // all-pairs pattern and still produce the right numbers.
  const std::size_t n = 32;
  const mdg::Mdg graph = core::complex_matmul_mdg_mixed_layout(n);
  // The derived transfer kinds: mul -> combine edges are 2D.
  std::size_t twod_edges = 0;
  for (const auto& edge : graph.edges()) {
    for (const auto& t : edge.transfers) {
      if (t.kind == mdg::TransferKind::k2D) ++twod_edges;
    }
  }
  EXPECT_EQ(twod_edges, 4u);

  const sim::MachineConfig mc = quiet_machine(8);
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 8.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 8);
  const GeneratedProgram generated = generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-11);
  EXPECT_LT(simulator.assemble_array("Ci", n, n).max_abs_diff(ref.ci),
            1e-11);
}

TEST(Codegen, ColumnLayoutSpmdIsStillNoopFreeOfMessagesWithinSameLayout) {
  // In the mixed-layout program under SPMD, the row->row edges are
  // elided but the row->col edges still move data even on the same
  // group (a genuine transpose-like redistribution).
  const std::size_t n = 16;
  const mdg::Mdg graph = core::complex_matmul_mdg_mixed_layout(n);
  const sim::MachineConfig mc = quiet_machine(4);
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const sched::Schedule spmd = sched::spmd_schedule(model, 4);
  const GeneratedProgram generated = generate_mpmd(graph, spmd);
  EXPECT_GT(generated.planned_messages, 0u);
  EXPECT_GT(generated.skipped_noop_redistributions, 0u);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-12);
}

class CodegenSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodegenSeeded, RandomSyntheticGraphsRunToCompletion) {
  Rng rng(GetParam());
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const sim::MachineConfig mc = quiet_machine(16);
  const cost::CostModel model(graph, mirror_params(mc),
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 16);
  const GeneratedProgram generated = generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  const sim::SimResult result = simulator.run(generated.program);
  EXPECT_GT(result.finish_time, 0.0);
  EXPECT_EQ(result.messages, generated.planned_messages);
}

TEST_P(CodegenSeeded, SimulationTracksSchedulePrediction) {
  // With mirrored parameters and no noise, the simulated finish time
  // should track the schedule's predicted makespan. The residual comes
  // from per-processor kernel overheads, barrier skew, per-message
  // latency, and synthetic-transfer shape rounding.
  Rng rng(GetParam() + 1000);
  mdg::RandomMdgConfig config;
  config.min_nodes = 6;
  config.max_nodes = 16;
  config.two_d_fraction = 0.2;
  const mdg::Mdg graph = mdg::random_mdg(rng, config);
  const sim::MachineConfig mc = quiet_machine(16);
  const cost::CostModel model(graph, mirror_params(mc),
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 16);
  const GeneratedProgram generated = generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  const sim::SimResult result = simulator.run(generated.program);
  EXPECT_NEAR(result.finish_time, psa.finish_time,
              0.35 * psa.finish_time)
      << "predicted " << psa.finish_time << " simulated "
      << result.finish_time;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenSeeded,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace paradigm::codegen
