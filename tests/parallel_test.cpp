// Tests for the deterministic parallel execution layer (DESIGN §8):
// thread-pool semantics (coverage, ordered reduction, exception
// propagation, nested submission, reuse), and the differential
// guarantee that every pipeline product — AllocationResult, Schedule,
// SimResult, fault sweeps — is bit-identical between --threads 1 and
// --threads 4.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "core/recovery.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/psa.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace paradigm {
namespace {

/// Restores the global pool to one thread when a test ends, so test
/// order never leaks a pool size.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(1); }
};

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST_F(ParallelTest, OrderedReduceIsThreadCountInvariant) {
  // Floating-point addition is not associative; committing partials in
  // index order must give the serial sum bit-for-bit.
  const std::size_t n = 4096;
  const auto term = [](std::size_t i) {
    Rng rng(i * 977 + 13);
    return rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-8.0, 8.0));
  };
  set_thread_count(1);
  const double serial = parallel_reduce<double>(
      n, 0.0, term, [](double a, double b) { return a + b; });
  set_thread_count(4);
  const double threaded = parallel_reduce<double>(
      n, 0.0, term, [](double a, double b) { return a + b; });
  EXPECT_EQ(serial, threaded);  // exact: same order, same rounding
}

TEST_F(ParallelTest, LowestIndexExceptionPropagates) {
  set_thread_count(4);
  for (int trial = 0; trial < 10; ++trial) {
    try {
      parallel_for(256, [&](std::size_t i) {
        if (i == 17 || i == 90 || i == 200) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 17");
    }
  }
}

TEST_F(ParallelTest, ExceptionDoesNotPoisonThePool) {
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(64, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must keep working after a throwing region.
  std::atomic<int> total{0};
  parallel_for(64, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

TEST_F(ParallelTest, NestedSubmitRunsInlineWithoutDeadlock) {
  set_thread_count(4);
  std::vector<int> out(64, 0);
  parallel_for(8, [&](std::size_t outer) {
    // A task fanning out again must not block on the fixed-size pool.
    parallel_for(8, [&](std::size_t inner) {
      out[outer * 8 + inner] = static_cast<int>(outer * 8 + inner);
    });
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST_F(ParallelTest, PoolReuseAcrossManyGraphs) {
  // One pool, 100 graphs: stresses region setup/teardown and checks a
  // real workload (PSA node weights) stays identical to serial.
  set_thread_count(4);
  std::vector<double> threaded(100);
  for (std::uint64_t g = 0; g < 100; ++g) {
    Rng rng(g);
    const mdg::Mdg graph = mdg::random_mdg(rng);
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{});
    const std::vector<double> alloc(graph.node_count(), 2.0);
    const std::vector<double> weights = parallel_map<double>(
        graph.node_count(),
        [&](std::size_t i) { return model.node_weight(i, alloc); });
    double sum = 0.0;
    for (const double w : weights) sum += w;
    threaded[g] = sum;
  }
  set_thread_count(1);
  for (std::uint64_t g = 0; g < 100; ++g) {
    Rng rng(g);
    const mdg::Mdg graph = mdg::random_mdg(rng);
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{});
    const std::vector<double> alloc(graph.node_count(), 2.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
      sum += model.node_weight(i, alloc);
    }
    EXPECT_EQ(threaded[g], sum) << "graph " << g;
  }
}

TEST_F(ParallelTest, SetThreadCountIsIdempotentAndResizable) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
}

// ---- differential tests: --threads 4 ≡ --threads 1 -------------------

// Cost model mirroring the simulated machine (same idiom as
// faults_test): random MDGs carry synthetic costs, the Strassen /
// complex-matmul graphs need fitted kernel entries.
cost::MachineParams mirror_params(const sim::MachineConfig& mc) {
  cost::MachineParams mp;
  mp.t_ss = mc.send_startup;
  mp.t_ps = mc.send_per_byte;
  mp.t_sr = mc.recv_startup;
  mp.t_pr = mc.recv_per_byte;
  mp.t_n = 0.0;
  return mp;
}

cost::KernelCostTable mirror_table(const sim::MachineConfig& mc,
                                   const mdg::Mdg& graph) {
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop ||
        node.loop.op == mdg::LoopOp::kSynthetic) {
      continue;
    }
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (table.contains(key)) continue;
    const double seq =
        mc.sequential_seconds(key.op, key.rows, key.cols, key.inner);
    table.set(key, cost::AmdahlParams{mc.timing_for(key.op).serial_fraction,
                                      seq});
  }
  return table;
}

void expect_identical(const solver::AllocationResult& a,
                      const solver::AllocationResult& b) {
  ASSERT_EQ(a.allocation.size(), b.allocation.size());
  for (std::size_t i = 0; i < a.allocation.size(); ++i) {
    EXPECT_EQ(a.allocation[i], b.allocation[i]) << "node " << i;
  }
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.average_time, b.average_time);
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

void expect_identical(const sched::Schedule& a, const sched::Schedule& b) {
  ASSERT_EQ(a.machine_size(), b.machine_size());
  ASSERT_EQ(a.graph().node_count(), b.graph().node_count());
  for (std::size_t id = 0; id < a.graph().node_count(); ++id) {
    const sched::ScheduledNode& pa = a.placement(id);
    const sched::ScheduledNode& pb = b.placement(id);
    EXPECT_EQ(pa.start, pb.start) << "node " << id;
    EXPECT_EQ(pa.finish, pb.finish) << "node " << id;
    EXPECT_EQ(pa.ranks, pb.ranks) << "node " << id;
  }
}

struct PipelineProducts {
  solver::AllocationResult allocation;
  sched::PsaResult psa;
  sim::SimResult sim;
};

PipelineProducts run_pipeline(const mdg::Mdg& graph, std::uint64_t p,
                              std::size_t num_starts) {
  sim::MachineConfig mc;
  mc.size = static_cast<std::uint32_t>(p);
  mc.noise_sigma = 0.02;
  mc.noise_seed = 0x1994;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  solver::ConvexAllocatorConfig config;
  config.num_starts = num_starts;
  solver::AllocationResult allocation =
      solver::ConvexAllocator(config).allocate(model, static_cast<double>(p));
  sched::PsaResult psa =
      sched::prioritized_schedule(model, allocation.allocation, p);
  const codegen::GeneratedProgram generated =
      codegen::generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  sim::SimResult sim = simulator.run(generated.program);
  return PipelineProducts{std::move(allocation), std::move(psa),
                          std::move(sim)};
}

class DifferentialSeeded : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void TearDown() override { set_thread_count(1); }
};

TEST_P(DifferentialSeeded, RandomMdgPipelineBitIdentical) {
  Rng rng(GetParam() * 7919 + 11);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  set_thread_count(1);
  const PipelineProducts serial = run_pipeline(graph, 32, 4);
  set_thread_count(4);
  const PipelineProducts threaded = run_pipeline(graph, 32, 4);
  expect_identical(serial.allocation, threaded.allocation);
  EXPECT_EQ(serial.psa.allocation, threaded.psa.allocation);
  EXPECT_EQ(serial.psa.pb, threaded.psa.pb);
  EXPECT_EQ(serial.psa.finish_time, threaded.psa.finish_time);
  expect_identical(serial.psa.schedule, threaded.psa.schedule);
  EXPECT_EQ(serial.sim, threaded.sim);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeeded,
                         ::testing::Range<std::uint64_t>(0, 5));

TEST_F(ParallelTest, ExamplesBitIdenticalAcrossThreadCounts) {
  for (const mdg::Mdg& graph :
       {core::strassen_mdg(32), core::complex_matmul_mdg(32)}) {
    set_thread_count(1);
    const PipelineProducts serial = run_pipeline(graph, 16, 4);
    set_thread_count(4);
    const PipelineProducts threaded = run_pipeline(graph, 16, 4);
    expect_identical(serial.allocation, threaded.allocation);
    expect_identical(serial.psa.schedule, threaded.psa.schedule);
    EXPECT_EQ(serial.sim, threaded.sim);
  }
}

core::FaultToleranceReport faulty_run(const mdg::Mdg& graph,
                                      std::size_t num_starts) {
  const std::uint64_t p = 8;
  sim::MachineConfig mc;
  mc.size = static_cast<std::uint32_t>(p);
  mc.noise_sigma = 0.0;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  solver::ConvexAllocatorConfig solver_config;
  solver_config.num_starts = num_starts;
  const solver::AllocationResult alloc =
      solver::ConvexAllocator(solver_config).allocate(
          model, static_cast<double>(p));
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, p);

  const codegen::GeneratedProgram generated =
      codegen::generate_mpmd(graph, psa.schedule);
  sim::Simulator baseline(mc);
  const double fault_free = baseline.run(generated.program).finish_time;

  sim::FaultPlan plan;
  plan.seed = 0x1994;
  plan.crashes.push_back(sim::CrashFault{1, 0.5 * fault_free});
  plan.drop_probability = 0.05;
  plan.max_retries = 10;
  plan.recv_timeout = 0.25 * fault_free;
  core::FaultToleranceConfig ft_config;
  ft_config.allocator = solver_config;
  return core::run_with_faults(graph, model, psa.schedule, mc, plan,
                               fault_free, ft_config);
}

TEST_F(ParallelTest, FaultInjectionBitIdenticalAcrossThreadCounts) {
  const mdg::Mdg graph = core::strassen_mdg(32);
  set_thread_count(1);
  const core::FaultToleranceReport serial = faulty_run(graph, 4);
  set_thread_count(4);
  const core::FaultToleranceReport threaded = faulty_run(graph, 4);
  EXPECT_EQ(serial.crashed, threaded.crashed);
  EXPECT_EQ(serial.recovered, threaded.recovered);
  EXPECT_EQ(serial.faulty, threaded.faulty);
  EXPECT_EQ(serial.recovery, threaded.recovery);
  EXPECT_EQ(serial.final_makespan(), threaded.final_makespan());
  EXPECT_EQ(serial.degradation.salvaged_nodes,
            threaded.degradation.salvaged_nodes);
  EXPECT_EQ(serial.degradation.rerun_nodes, threaded.degradation.rerun_nodes);
}

TEST_F(ParallelTest, FaultSweepBitIdenticalAcrossThreadCounts) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  const std::uint64_t p = 8;
  sim::MachineConfig mc;
  mc.size = static_cast<std::uint32_t>(p);
  mc.noise_sigma = 0.0;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const solver::AllocationResult alloc =
      solver::ConvexAllocator{}.allocate(model, static_cast<double>(p));
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, p);

  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashFault{1, 0.01});
  plan.drop_probability = 0.1;
  plan.max_retries = 10;
  plan.recv_timeout = 0.05;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 6; ++s) seeds.push_back(100 + s);

  set_thread_count(1);
  const core::FaultSweepResult serial = core::sweep_faults(
      graph, model, psa.schedule, mc, plan, seeds);
  set_thread_count(4);
  const core::FaultSweepResult threaded = core::sweep_faults(
      graph, model, psa.schedule, mc, plan, seeds);
  EXPECT_EQ(serial, threaded);
  ASSERT_EQ(serial.cells.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial.cells[i].seed, seeds[i]);
  }
}

TEST_F(ParallelTest, MultiStartNeverWorseThanSingleStart) {
  // K starts include the legacy start 0, so the best-of-K Phi can only
  // match or improve it — and with K=1 the result is the legacy one.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 900);
    const mdg::Mdg graph = mdg::random_mdg(rng);
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{});
    const solver::AllocationResult single =
        solver::ConvexAllocator{}.allocate(model, 16.0);
    solver::ConvexAllocatorConfig multi;
    multi.num_starts = 6;
    const solver::AllocationResult best =
        solver::ConvexAllocator(multi).allocate(model, 16.0);
    EXPECT_LE(best.phi, single.phi * (1.0 + 1e-12)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace paradigm
