// Memory-pressure chaos soak (DESIGN §15, `ctest -L memory`): mixed
// job corpora pushed through the service under byte budgets and
// deterministic OOM injection, at 1 and at 4 worker threads.
//
// The §15 contract under test:
//   * budgets off (and no injection) is a no-op — the ledger is
//     byte-identical to a run without the memory layer;
//   * every admission/dispatch/unwind decision happens on the serial
//     event loop, so budgeted ledgers are byte-identical across
//     thread counts too;
//   * pressure degrades structurally — brownout rungs, deferrals,
//     structured over-memory sheds — never via a crash or a hung
//     queue, and the outcome conservation equation stays exact;
//   * injected faults at every charge boundary (the memory analogue
//     of the §14 storage sweep) escalate or fail stop cleanly.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "support/parallel.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

/// Deterministic mixed corpus, value-parameterized by index like the
/// §11 soak: valid jobs, oversized submissions, deadline-doomed work,
/// and (optionally) pathological graphs whose *actual* node count
/// dwarfs the declared one — the hostile case for a footprint
/// estimator.
std::vector<JobSpec> chaos_corpus(std::size_t count, bool pathological) {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    JobSpec spec;
    spec.id = "m" + std::to_string(i);
    spec.seed = 2000 + i;
    spec.arrival = i * 40;
    spec.processors = (i % 3 == 0) ? 4 : 8;
    spec.nodes = 6 + (i % 5);
    spec.job_class = (i % 4 == 0) ? "alt" : "default";
    switch (i % 10) {
      case 3:
        if (pathological) {
          spec.graph = GraphKind::kPathological;
          spec.seed = 1 + (i % 7);
        }
        break;
      case 5:
        spec.nodes = 4096;  // Oversized: rejected before the budget.
        break;
      case 7:
        spec.deadline = 20 + (i % 13);  // Deadline-doomed.
        break;
      default:
        break;
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

ServiceConfig mem_config() {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 30;
  config.pipeline.solver.continuation_rounds = 2;
  config.queue_capacity = 6;
  config.slots = 4;
  config.max_nodes = 512;
  config.default_deadline = 60000;
  config.max_retries = 1;
  config.retry_min_level = degrade::DegradationLevel::kAreaProportional;
  return config;
}

/// The undegraded (rung-0) footprint of the corpus's largest
/// non-oversized job, so budgets scale with the estimator instead of
/// hard-coding byte counts.
std::uint64_t fresh_estimate(const ServiceConfig& config) {
  return core::estimate_footprint(10, 8, degrade::DegradationLevel::kNone,
                                  config.pipeline.solver,
                                  config.pipeline.recovery);
}

struct SoakRun {
  std::string ledger;
  ServiceReport report;
};

SoakRun run_chaos(std::size_t threads, std::size_t count, bool pathological,
                  const ServiceConfig::MemoryConfig& memory) {
  set_thread_count(threads);
  ServiceConfig config = mem_config();
  config.memory = memory;
  Service service(config);
  for (JobSpec& spec : chaos_corpus(count, pathological)) {
    service.submit(std::move(spec));
  }
  service.drain_at(count * 36, 30000);
  SoakRun run;
  run.report = service.run();
  run.ledger = run.report.ledger();
  set_thread_count(0);
  return run;
}

/// Every submission reaches exactly one terminal tally — shed and
/// browned-out work included. A leak here means an outcome was dropped
/// (or double-counted) somewhere in the §15 paths.
void expect_conserved(const ServiceReport& report) {
  EXPECT_EQ(report.completed + report.degraded + report.rejected +
                report.shed + report.cancelled + report.failed +
                report.over_memory,
            report.results.size());
}

TEST(MemorySoak, BudgetsOffIsByteIdenticalToGenerousBudget) {
  // Random-only corpus: actual node counts never exceed the declared
  // ones, so a generous budget must change *nothing* — same ledger
  // bytes, no rung tokens, no brownouts — while still accounting.
  ServiceConfig::MemoryConfig off;  // budget_bytes = 0.
  ServiceConfig::MemoryConfig generous;
  generous.budget_bytes = std::uint64_t{1} << 40;
  const SoakRun base = run_chaos(2, 120, false, off);
  const SoakRun budgeted = run_chaos(2, 120, false, generous);
  EXPECT_EQ(base.ledger, budgeted.ledger);
  EXPECT_EQ(base.report.mem_peak, 0u);
  EXPECT_EQ(base.report.mem_charges, 0u);
  EXPECT_EQ(budgeted.report.brownouts, 0u);
  EXPECT_EQ(budgeted.report.over_memory, 0u);
  EXPECT_GT(budgeted.report.mem_peak, 0u);
  EXPECT_GT(budgeted.report.mem_charges, 0u);
  expect_conserved(base.report);
  expect_conserved(budgeted.report);
}

TEST(MemorySoak, TightBudgetBrownsOutDeterministically) {
  ServiceConfig::MemoryConfig tight;
  // Room for one undegraded dispatch plus change: concurrent arrivals
  // must brown out to the analytic rung or defer, never crash.
  tight.budget_bytes = fresh_estimate(mem_config()) * 3 / 2;
  const SoakRun serial = run_chaos(1, 200, true, tight);
  const SoakRun parallel = run_chaos(4, 200, true, tight);
  ASSERT_EQ(serial.ledger, parallel.ledger);
  expect_conserved(serial.report);
  EXPECT_GT(serial.report.brownouts, 0u) << serial.ledger;
  EXPECT_GT(serial.report.mem_deferrals, 0u);
  // The ledger carries the dispatch rung for browned-out attempts.
  EXPECT_NE(serial.ledger.find(" rung="), std::string::npos);
}

TEST(MemorySoak, ImpossibleBudgetShedsEverythingAndFailStops) {
  ServiceConfig::MemoryConfig impossible;
  impossible.budget_bytes = 1024;  // Below any job's homogeneous rung.
  const SoakRun run = run_chaos(2, 60, false, impossible);
  expect_conserved(run.report);
  EXPECT_EQ(run.report.completed + run.report.degraded, 0u);
  EXPECT_GT(run.report.over_memory, 0u);
  EXPECT_EQ(run.report.exit_code(), 26) << run.ledger;
  EXPECT_NE(run.ledger.find("over_memory="), std::string::npos);
}

TEST(MemorySoak, TransientInjectionAtEveryChargeBoundary) {
  // The §14 storage sweep, transposed to memory: a one-shot injected
  // OOM at the k-th charge of every attempt, for every boundary an
  // attempt has (graph, per-rung solver, psa, sim — plus ladder
  // retries). Each schedule must stay crash-free, conserved, and
  // byte-identical across thread counts; escalation makes forward
  // progress because the transient does not re-fire after the unwind.
  for (std::int64_t k = 0; k < 8; ++k) {
    ServiceConfig::MemoryConfig mem;
    mem.budget_bytes = std::uint64_t{1} << 40;
    mem.inject.fail_charge_after = k;
    mem.inject.fail_count = 1;
    const SoakRun serial = run_chaos(1, 60, true, mem);
    const SoakRun parallel = run_chaos(4, 60, true, mem);
    ASSERT_EQ(serial.ledger, parallel.ledger) << "charge boundary " << k;
    expect_conserved(serial.report);
    // Work still finishes: an injected OOM is an unwind, not an outage.
    EXPECT_GT(serial.report.completed + serial.report.degraded, 0u)
        << "charge boundary " << k;
    if (k == 0) {
      // The very first charge always exists, so boundary 0 must
      // actually unwind something.
      EXPECT_GT(serial.report.mem_unwinds, 0u) << serial.ledger;
    }
  }
}

TEST(MemorySoak, StickyInjectionFailStops) {
  // A sticky fault from the first charge: every rung of every attempt
  // trips, so escalation runs out of ladder and the service reports
  // the structured fail-stop (exit 26) — not a crash, and the doomed
  // runs still produce conserved ledger records.
  ServiceConfig::MemoryConfig mem;
  mem.budget_bytes = std::uint64_t{1} << 40;
  mem.inject.fail_charge_after = 0;  // Sticky: fail_count defaults to all.
  const SoakRun serial = run_chaos(1, 60, true, mem);
  const SoakRun parallel = run_chaos(4, 60, true, mem);
  ASSERT_EQ(serial.ledger, parallel.ledger);
  expect_conserved(serial.report);
  EXPECT_EQ(serial.report.completed + serial.report.degraded, 0u);
  EXPECT_GT(serial.report.over_memory, 0u);
  EXPECT_EQ(serial.report.exit_code(), 26);
}

TEST(MemorySoak, ChaosCorpusLedgerByteIdenticalAcrossThreads) {
  // The full 500-job overload soak: moderate budget, transient OOM
  // injection, pathological graphs whose real footprint exceeds their
  // declared estimate — under 1 and 4 threads. This is the §15
  // tentpole gate: byte-identical ledgers, exact conservation, and
  // every pressure path exercised at once.
  ServiceConfig::MemoryConfig mem;
  mem.budget_bytes = fresh_estimate(mem_config()) * 5 / 2;
  mem.inject.fail_charge_after = 2;
  mem.inject.fail_count = 1;
  const SoakRun serial = run_chaos(1, 500, true, mem);
  const SoakRun parallel = run_chaos(4, 500, true, mem);
  ASSERT_EQ(serial.ledger, parallel.ledger);
  expect_conserved(serial.report);
  expect_conserved(parallel.report);

  std::map<std::string, int> outcomes;
  std::istringstream in(serial.ledger);
  std::string line;
  std::size_t result_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++result_lines;
    const std::size_t pos = line.find("outcome=");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::size_t end = line.find(' ', pos);
    ++outcomes[line.substr(pos + 8, end - pos - 8)];
  }
  EXPECT_GE(result_lines, 500u);
  // Outcome diversity: the soak must genuinely reach the memory paths
  // alongside the pre-§15 admission/cancellation ones.
  EXPECT_GT(outcomes["completed"] + outcomes["degraded"], 0) << serial.ledger;
  EXPECT_GT(outcomes["rejected-oversized"], 0);
  EXPECT_GT(serial.report.brownouts + serial.report.over_memory, 0u);
}

TEST(MemorySoak, NoBrownoutDefersOrShedsInsteadOfDegrading) {
  ServiceConfig::MemoryConfig mem;
  mem.budget_bytes = fresh_estimate(mem_config()) * 3 / 2;
  mem.brownout = false;
  const SoakRun serial = run_chaos(1, 120, false, mem);
  const SoakRun parallel = run_chaos(4, 120, false, mem);
  ASSERT_EQ(serial.ledger, parallel.ledger);
  expect_conserved(serial.report);
  EXPECT_EQ(serial.report.brownouts, 0u);
  // With brownout off the pressure valve is head-of-line deferral.
  EXPECT_GT(serial.report.mem_deferrals, 0u);
  EXPECT_EQ(serial.ledger.find(" rung="), std::string::npos);
}

}  // namespace
}  // namespace paradigm::svc
