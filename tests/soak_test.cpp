// Service soak (DESIGN §11, `ctest -L soak`): a 200-job mixed corpus —
// valid jobs, pathological graphs, oversized submissions, and
// deadline-doomed work — pushed through the service at 1 and at 4
// worker threads. The service is a discrete-event simulation on the
// logical work clock, so the two ledgers must be *byte-identical*; the
// corpus is also checked for outcome diversity so the soak genuinely
// exercises every admission / cancellation path.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/parallel.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

/// Deterministic 200-job corpus. Kept value-parameterized by index so
/// the corpus itself never depends on iteration order or randomness.
std::vector<JobSpec> soak_corpus() {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 200; ++i) {
    JobSpec spec;
    spec.id = "s" + std::to_string(i);
    spec.seed = 1000 + i;
    spec.arrival = i * 40;
    spec.processors = (i % 3 == 0) ? 4 : 8;
    spec.nodes = 6 + (i % 5);
    spec.job_class = (i % 4 == 0) ? "alt" : "default";
    switch (i % 10) {
      case 3:
        // Pathological graphs: exercise the recovery ladder (and the
        // retry path when a rung at/past the retry rung is taken).
        spec.graph = GraphKind::kPathological;
        spec.seed = 1 + (i % 7);
        break;
      case 5:
        // Oversized: rejected at admission.
        spec.nodes = 4096;
        break;
      case 7:
        // Deadline-doomed: a budget no pipeline run fits into.
        spec.deadline = 20 + (i % 13);
        break;
      default:
        break;
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

ServiceConfig soak_config() {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 30;
  config.pipeline.solver.continuation_rounds = 2;
  config.queue_capacity = 6;
  config.slots = 4;
  config.max_nodes = 512;
  config.default_deadline = 60000;  // Bounds every job.
  config.default_stall_limit = 0;
  config.max_retries = 1;
  config.retry_min_level = degrade::DegradationLevel::kAreaProportional;
  return config;
}

std::string run_soak(std::size_t threads) {
  set_thread_count(threads);
  ServiceConfig config = soak_config();
  Service service(config);
  for (JobSpec& spec : soak_corpus()) service.submit(std::move(spec));
  service.drain_at(7200, 30000);
  const std::string ledger = service.run().ledger();
  set_thread_count(0);
  return ledger;
}

TEST(Soak, MixedCorpusLedgerByteIdenticalAcrossThreads) {
  const std::string serial = run_soak(1);
  const std::string parallel = run_soak(4);
  // Byte identity first: any divergence is a determinism bug in the
  // service/event loop/cancellation accounting, and the failure output
  // (first differing line) is the repro.
  ASSERT_EQ(serial, parallel);

  // The corpus must actually reach a diverse outcome set, otherwise
  // the soak silently stops covering the admission/cancel paths.
  std::map<std::string, int> outcomes;
  std::istringstream in(serial);
  std::string line;
  std::size_t result_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++result_lines;
    const std::size_t pos = line.find("outcome=");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::size_t end = line.find(' ', pos);
    ++outcomes[line.substr(pos + 8, end - pos - 8)];
  }
  // Every submission reaches exactly one terminal record (retries add
  // extra attempt records on top).
  EXPECT_GE(result_lines, 200u);
  EXPECT_GT(outcomes["completed"], 0) << serial;
  EXPECT_GT(outcomes["rejected-oversized"], 0);
  EXPECT_GT(outcomes["rejected-draining"], 0);
  EXPECT_GT(outcomes["cancelled-deadline"], 0);
  EXPECT_GT(outcomes["cancelled-drain"] + outcomes["rejected-queue-full"],
            0);
}

TEST(Soak, ReplayIsByteIdentical) {
  // Same thread count, fresh Service: the ledger is a pure function of
  // the corpus + config.
  const std::string first = run_soak(2);
  const std::string second = run_soak(2);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace paradigm::svc
