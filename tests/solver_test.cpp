// Tests for the convex allocator: gradient correctness of the smoothed
// objective, convexity along segments, agreement with the exhaustive
// oracle on small graphs, dominance over the baselines, and the paper's
// Figure-1 example.
#include <gtest/gtest.h>

#include <cmath>

#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "solver/allocator.hpp"
#include "solver/oracle.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm::solver {
namespace {

cost::CostModel synthetic_model(const mdg::Mdg& graph,
                                cost::MachineParams machine = {}) {
  return cost::CostModel(graph, machine, cost::KernelCostTable{});
}

mdg::Mdg small_random(std::uint64_t seed, std::size_t max_nodes = 5) {
  Rng rng(seed);
  mdg::RandomMdgConfig config;
  config.min_nodes = 3;
  config.max_nodes = max_nodes;
  config.max_width = 3;
  return mdg::random_mdg(rng, config);
}

class SolverSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverSeeded, SmoothedObjectiveGradientMatchesFiniteDifferences) {
  const mdg::Mdg graph = small_random(GetParam(), 8);
  cost::MachineParams mp;
  mp.t_n = 2e-9;
  const cost::CostModel model = synthetic_model(graph, mp);
  const ConvexAllocator allocator;
  const double p = 16.0;
  Rng rng(GetParam() * 31 + 7);
  std::vector<double> x(graph.node_count());
  for (auto& xi : x) xi = rng.uniform(0.1, std::log(p) - 0.1);

  std::vector<double> grad(x.size(), 0.0);
  const double mu_x = 0.25;
  const double mu_t = 0.01;
  allocator.smoothed_objective(model, p, x, mu_x, mu_t, grad);
  const double h = 1e-6;
  for (std::size_t k = 0; k < x.size(); ++k) {
    std::vector<double> xp = x;
    std::vector<double> xm = x;
    xp[k] += h;
    xm[k] -= h;
    const double fp =
        allocator.smoothed_objective(model, p, xp, mu_x, mu_t, {});
    const double fm =
        allocator.smoothed_objective(model, p, xm, mu_x, mu_t, {});
    const double fd = (fp - fm) / (2 * h);
    EXPECT_NEAR(grad[k], fd, 1e-4 * (1.0 + std::abs(fd))) << "var " << k;
  }
}

TEST_P(SolverSeeded, SmoothedObjectiveConvexAlongSegments) {
  const mdg::Mdg graph = small_random(GetParam() + 100, 10);
  const cost::CostModel model = synthetic_model(graph);
  const ConvexAllocator allocator;
  const double p = 32.0;
  Rng rng(GetParam() * 13 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(graph.node_count());
    std::vector<double> b(graph.node_count());
    std::vector<double> mid(graph.node_count());
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = rng.uniform(0.0, std::log(p));
      b[i] = rng.uniform(0.0, std::log(p));
      mid[i] = 0.5 * (a[i] + b[i]);
    }
    const double mu_x = 0.3;
    const double mu_t = 0.02;
    const double fa = allocator.smoothed_objective(model, p, a, mu_x, mu_t, {});
    const double fb = allocator.smoothed_objective(model, p, b, mu_x, mu_t, {});
    const double fm =
        allocator.smoothed_objective(model, p, mid, mu_x, mu_t, {});
    EXPECT_LE(fm, 0.5 * (fa + fb) + 1e-9 * (fa + fb));
  }
}

TEST_P(SolverSeeded, MatchesOracleOnSmallGraphs) {
  const mdg::Mdg graph = small_random(GetParam() + 200, 4);
  cost::MachineParams mp;
  const cost::CostModel model = synthetic_model(graph, mp);
  const double p = 16.0;
  const ConvexAllocator allocator;
  const AllocationResult convex = allocator.allocate(model, p);
  // Fine geometric grid oracle: 9 points per variable.
  OracleConfig oc;
  oc.grid_points = 9;
  const AllocationResult oracle = oracle_allocation(model, p, oc);
  // The continuous optimum can only be better than any grid point; and
  // the solver should get within a few percent of the grid optimum.
  EXPECT_LE(convex.phi, oracle.phi * 1.02)
      << "solver " << convex.summary() << " vs oracle " << oracle.summary();
}

TEST_P(SolverSeeded, DominatesBaselines) {
  const mdg::Mdg graph = small_random(GetParam() + 300, 12);
  const cost::CostModel model = synthetic_model(graph);
  const double p = 32.0;
  const AllocationResult convex = ConvexAllocator{}.allocate(model, p);
  EXPECT_LE(convex.phi, naive_allocation(model, p).phi * 1.001);
  EXPECT_LE(convex.phi, serial_node_allocation(model, p).phi * 1.001);
  EXPECT_LE(convex.phi, greedy_doubling_allocation(model, p).phi * 1.01);
}

TEST_P(SolverSeeded, MonotoneInMachineSize) {
  const mdg::Mdg graph = small_random(GetParam() + 400, 10);
  const cost::CostModel model = synthetic_model(graph);
  const ConvexAllocator allocator;
  double prev = allocator.allocate(model, 4.0).phi;
  for (const double p : {8.0, 16.0, 32.0}) {
    const double cur = allocator.allocate(model, p).phi;
    // Larger machines can only help (small solver slack allowed).
    EXPECT_LE(cur, prev * 1.01) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSeeded,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Solver, AllocationInBox) {
  const mdg::Mdg graph = small_random(7, 10);
  const cost::CostModel model = synthetic_model(graph);
  const double p = 16.0;
  const AllocationResult result = ConvexAllocator{}.allocate(model, p);
  ASSERT_EQ(result.allocation.size(), graph.node_count());
  for (const double a : result.allocation) {
    EXPECT_GE(a, 1.0);
    EXPECT_LE(a, p);
  }
  EXPECT_NEAR(result.phi,
              std::max(result.average_time, result.critical_path), 1e-12);
}

TEST(Solver, Figure1ExampleMatchesPaperNumbers) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);

  // Naive all-4 allocation = pure data parallelism: 15.6 s of
  // processor-time-area per processor (the paper's first scheme; the
  // serialized schedule's makespan equals A_p here). The critical path
  // ignores processor contention, so it is lower.
  const AllocationResult naive = naive_allocation(model, 4.0);
  EXPECT_NEAR(naive.average_time, 15.6, 1e-6);
  EXPECT_NEAR(naive.critical_path, 12.125, 1e-6);

  // The mixed allocation (N1 on 4, N2/N3 on 2) gives A = C = 14.3 s.
  std::vector<double> mixed(graph.node_count(), 1.0);
  mixed[0] = 4.0;  // N1
  mixed[1] = 2.0;  // N2
  mixed[2] = 2.0;  // N3
  EXPECT_NEAR(model.critical_path_time(mixed), 14.3, 1e-6);
  EXPECT_NEAR(model.average_finish_time(mixed, 4.0), 14.3, 1e-6);

  // The convex optimum is at least as good as the mixed hand allocation
  // (up to the smoothing slack) and clearly better than naive.
  const AllocationResult convex = ConvexAllocator{}.allocate(model, 4.0);
  EXPECT_LE(convex.phi, 14.3 * 1.001);
  EXPECT_LT(convex.phi, naive.phi);
}

TEST(Oracle, GridPowersOfTwo) {
  const auto grid = oracle_grid(16.0);
  EXPECT_EQ(grid, (std::vector<double>{1, 2, 4, 8, 16}));
}

TEST(Oracle, GridGeometric) {
  OracleConfig oc;
  oc.grid_points = 3;
  const auto grid = oracle_grid(16.0, oc);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_NEAR(grid[0], 1.0, 1e-12);
  EXPECT_NEAR(grid[1], 4.0, 1e-9);
  EXPECT_NEAR(grid[2], 16.0, 1e-9);
}

TEST(Oracle, RejectsHugeSearchSpaces) {
  Rng rng(1);
  mdg::RandomMdgConfig config;
  config.min_nodes = 20;
  config.max_nodes = 20;
  const mdg::Mdg graph = mdg::random_mdg(rng, config);
  const cost::CostModel model = synthetic_model(graph);
  OracleConfig oc;
  oc.max_combinations = 1000;
  EXPECT_THROW(oracle_allocation(model, 64.0, oc), Error);
}

TEST(Baselines, GreedyImprovesOnItsSerialStartingPoint) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const mdg::Mdg graph = small_random(seed + 500, 10);
    const cost::CostModel model = synthetic_model(graph);
    const double p = 16.0;
    const double greedy = greedy_doubling_allocation(model, p).phi;
    const double serial = serial_node_allocation(model, p).phi;
    // Greedy starts from the all-ones allocation and only ever applies
    // strictly improving doublings.
    EXPECT_LE(greedy, serial + 1e-9);
  }
}

TEST(Solver, InvalidMachineSizeRejected) {
  const mdg::Mdg graph = small_random(1, 4);
  const cost::CostModel model = synthetic_model(graph);
  EXPECT_THROW(ConvexAllocator{}.allocate(model, 0.5), Error);
  EXPECT_THROW(naive_allocation(model, 0.0), Error);
}

}  // namespace
}  // namespace paradigm::solver
