// The graceful-degradation subsystem (DESIGN §10): the taxonomy and
// exit-code mapping, the sanitization repair rules, the recovery
// ladder, the analytic fallback allocations, the deterministic solver
// budget, the post-schedule invariant gate, and pipeline-level
// visibility of degraded runs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/json_export.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "cost/sanitize.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/bounds.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/degrade.hpp"
#include "support/error.hpp"

namespace paradigm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- taxonomy -----------------------------------------------------------------

TEST(Degrade, LadderOrderAndSaturation) {
  using degrade::DegradationLevel;
  EXPECT_EQ(degrade::next_level(DegradationLevel::kNone),
            DegradationLevel::kMultiStartRetry);
  EXPECT_EQ(degrade::next_level(DegradationLevel::kMultiStartRetry),
            DegradationLevel::kSmoothingRestart);
  EXPECT_EQ(degrade::next_level(DegradationLevel::kSmoothingRestart),
            DegradationLevel::kAreaProportional);
  EXPECT_EQ(degrade::next_level(DegradationLevel::kAreaProportional),
            DegradationLevel::kHomogeneous);
  EXPECT_EQ(degrade::next_level(DegradationLevel::kHomogeneous),
            DegradationLevel::kSerial);
  // The last rung saturates: there is nowhere further to fall.
  EXPECT_EQ(degrade::next_level(DegradationLevel::kSerial),
            DegradationLevel::kSerial);
}

TEST(Degrade, ExitCodesDistinguishCleanFromDegraded) {
  using degrade::DegradationLevel;
  EXPECT_EQ(degrade::exit_code(DegradationLevel::kNone), 0);
  EXPECT_EQ(degrade::exit_code(DegradationLevel::kMultiStartRetry), 11);
  EXPECT_EQ(degrade::exit_code(DegradationLevel::kAreaProportional), 13);
  EXPECT_EQ(degrade::exit_code(DegradationLevel::kSerial), 15);
}

TEST(Degrade, EveryLevelAndCodeHasAStableName) {
  for (int i = 0; i < degrade::kDegradationLevels; ++i) {
    const auto level = static_cast<degrade::DegradationLevel>(i);
    EXPECT_STRNE(degrade::to_string(level), "?") << i;
  }
  EXPECT_STREQ(degrade::to_string(degrade::DegradationLevel::kNone), "none");
  EXPECT_STREQ(degrade::to_string(degrade::Severity::kError), "error");
  EXPECT_STRNE(
      degrade::to_string(degrade::DiagnosticCode::kInvariantBoundFactor),
      "?");
}

TEST(Degrade, HasErrorAndFormatting) {
  std::vector<degrade::Diagnostic> diags;
  diags.push_back({degrade::DiagnosticCode::kTrivialGraph,
                   degrade::Severity::kInfo, "graph", "1 node"});
  EXPECT_FALSE(degrade::has_error(diags));
  diags.push_back({degrade::DiagnosticCode::kNonFiniteTau,
                   degrade::Severity::kError, "node n3", "tau=nan"});
  EXPECT_TRUE(degrade::has_error(diags));
  const std::string text = degrade::format_diagnostics(diags);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("node n3"), std::string::npos);
  EXPECT_NE(text.find("tau=nan"), std::string::npos);
}

TEST(Degrade, AllFinite) {
  EXPECT_TRUE(degrade::all_finite({}));
  const std::vector<double> good = {0.0, -1.0, 1e300};
  EXPECT_TRUE(degrade::all_finite(good));
  const std::vector<double> bad = {1.0, kNaN};
  EXPECT_FALSE(degrade::all_finite(bad));
  const std::vector<double> inf = {1.0, kInf};
  EXPECT_FALSE(degrade::all_finite(inf));
}

// ---- sanitization repair rules ----------------------------------------------------

TEST(Sanitize, AmdahlRepairRules) {
  const degrade::Policy policy;
  // NaN alpha -> 0; out-of-range alpha clamped into [0, 1].
  EXPECT_EQ(cost::sanitized_amdahl({kNaN, 1.0}, policy).alpha, 0.0);
  EXPECT_EQ(cost::sanitized_amdahl({-0.5, 1.0}, policy).alpha, 0.0);
  EXPECT_EQ(cost::sanitized_amdahl({2.0, 1.0}, policy).alpha, 1.0);
  // NaN/Inf/negative tau -> 0; huge tau clamped to the policy limit.
  EXPECT_EQ(cost::sanitized_amdahl({0.1, kNaN}, policy).tau, 0.0);
  EXPECT_EQ(cost::sanitized_amdahl({0.1, kInf}, policy).tau, 0.0);
  EXPECT_EQ(cost::sanitized_amdahl({0.1, -3.0}, policy).tau, 0.0);
  EXPECT_EQ(cost::sanitized_amdahl({0.1, 1e300}, policy).tau,
            policy.tau_limit);
  // Well-formed parameters pass through untouched.
  const cost::AmdahlParams ok{0.25, 0.75};
  EXPECT_EQ(cost::sanitized_amdahl(ok, policy).alpha, 0.25);
  EXPECT_EQ(cost::sanitized_amdahl(ok, policy).tau, 0.75);
}

TEST(Sanitize, MachineRepairRules) {
  const degrade::Policy policy;
  cost::MachineParams mp;
  mp.t_ss = kNaN;
  mp.t_ps = -1.0;
  mp.t_sr = kInf;
  mp.t_pr = 1e300;
  const cost::MachineParams fixed = cost::sanitized_machine(mp, policy);
  EXPECT_EQ(fixed.t_ss, 0.0);
  EXPECT_EQ(fixed.t_ps, 0.0);
  EXPECT_EQ(fixed.t_sr, 0.0);
  EXPECT_EQ(fixed.t_pr, policy.machine_param_limit);
  EXPECT_EQ(fixed.t_n, mp.t_n);  // untouched: it was fine
}

mdg::Mdg two_node_graph(double alpha0, double tau0, double alpha1,
                        double tau1) {
  mdg::Mdg graph;
  const auto a = graph.add_synthetic("a", alpha0, tau0);
  const auto b = graph.add_synthetic("b", alpha1, tau1);
  graph.add_synthetic_dependence(a, b, 1024);
  graph.finalize();
  return graph;
}

TEST(Sanitize, ScanFlagsNonFiniteTauAsError) {
  const mdg::Mdg graph = two_node_graph(0.1, kNaN, 0.1, 1.0);
  const auto report = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{});
  EXPECT_TRUE(report.needs_repair);
  EXPECT_TRUE(degrade::has_error(report.diagnostics));
  bool found = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kNonFiniteTau) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Sanitize, ScanFlagsAlphaOutOfRange) {
  const mdg::Mdg graph = two_node_graph(2.0, 1.0, 0.1, 1.0);
  const auto report = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{});
  EXPECT_TRUE(report.needs_repair);
  bool found = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kAlphaOutOfRange) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Sanitize, ScanFlagsTauDynamicRangeAsWarning) {
  const mdg::Mdg graph = two_node_graph(0.1, 1e-10, 0.1, 1e10);
  const auto report = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{});
  // A range warning alone must not force repair.
  EXPECT_FALSE(report.needs_repair);
  bool found = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kTauDynamicRange) {
      found = true;
      EXPECT_EQ(d.severity, degrade::Severity::kWarning);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sanitize, ScanFlagsZeroCostAndTrivialGraphs) {
  const mdg::Mdg zero = two_node_graph(0.0, 0.0, 0.0, 0.0);
  const auto zr = cost::sanitize_inputs(zero, cost::MachineParams{},
                                        cost::KernelCostTable{});
  bool zero_found = false;
  for (const auto& d : zr.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kZeroCostGraph) zero_found = true;
  }
  EXPECT_TRUE(zero_found);

  mdg::Mdg single;
  single.add_synthetic("only", 0.1, 1.0);
  single.finalize();
  const auto sr = cost::sanitize_inputs(single, cost::MachineParams{},
                                        cost::KernelCostTable{});
  bool trivial_found = false;
  for (const auto& d : sr.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kTrivialGraph) {
      trivial_found = true;
      EXPECT_EQ(d.severity, degrade::Severity::kInfo);
    }
  }
  EXPECT_TRUE(trivial_found);
}

TEST(Sanitize, ScanFlagsFanOutExplosion) {
  mdg::Mdg graph;
  const auto hub = graph.add_synthetic("hub", 0.1, 1.0);
  degrade::Policy policy;
  policy.fan_out_limit = 8;
  for (int i = 0; i < 12; ++i) {
    const auto leaf =
        graph.add_synthetic("leaf" + std::to_string(i), 0.1, 0.5);
    graph.add_synthetic_dependence(hub, leaf, 64);
  }
  graph.finalize();
  const auto report = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{}, policy);
  bool found = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kFanOutExplosion) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Sanitize, CleanGraphScansClean) {
  Rng rng(7);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const auto report = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{});
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.needs_repair);
}

TEST(Sanitize, CostModelSanitizePolicyMakesPathologicalCostsFinite) {
  const mdg::Mdg graph = two_node_graph(kNaN, kNaN, 2.0, -5.0);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{},
                              cost::ParamPolicy::kSanitize);
  const std::vector<double> alloc(graph.node_count(), 2.0);
  EXPECT_TRUE(std::isfinite(model.phi(alloc, 8.0)));
}

// ---- fallback allocations ----------------------------------------------------------

TEST(Recovery, AreaProportionalIsFiniteAndInBounds) {
  Rng rng(11);
  mdg::RandomMdgConfig rc;
  rc.tau_min = 1e-6;
  rc.tau_max = 10.0;
  const mdg::Mdg graph = mdg::random_mdg(rng, rc);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const double p = 16.0;
  const auto result = solver::area_proportional_allocation(model, p);
  EXPECT_TRUE(result.finite());
  ASSERT_EQ(result.allocation.size(), graph.node_count());
  double max_alloc = 0.0;
  for (const double a : result.allocation) {
    EXPECT_GE(a, 1.0);
    EXPECT_LE(a, p);
    max_alloc = std::max(max_alloc, a);
  }
  // The heaviest node gets the whole machine.
  EXPECT_DOUBLE_EQ(max_alloc, p);
}

TEST(Recovery, LadderReturnsCleanResultOnWellConditionedInput) {
  Rng rng(3);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto guarded = solver::allocate_with_recovery(model, 16.0);
  EXPECT_EQ(guarded.level, degrade::DegradationLevel::kNone);
  EXPECT_TRUE(guarded.result.finite());
  // Rung 0 is the plain solver: bit-identical to calling it directly.
  const auto plain = solver::ConvexAllocator{}.allocate(model, 16.0);
  ASSERT_EQ(guarded.result.allocation.size(), plain.allocation.size());
  for (std::size_t i = 0; i < plain.allocation.size(); ++i) {
    EXPECT_DOUBLE_EQ(guarded.result.allocation[i], plain.allocation[i]);
  }
  EXPECT_DOUBLE_EQ(guarded.result.phi, plain.phi);
}

TEST(Recovery, LadderFallsThroughOnNonFiniteCosts) {
  // Unsanitized NaN taus defeat every descent-based rung; the ladder
  // must still terminate with a structured answer instead of NaN.
  const mdg::Mdg graph = two_node_graph(0.1, kNaN, 0.1, kNaN);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto guarded = solver::allocate_with_recovery(model, 8.0);
  EXPECT_NE(guarded.level, degrade::DegradationLevel::kNone);
  EXPECT_FALSE(guarded.diagnostics.empty());
  bool recovery_noted = false;
  for (const auto& d : guarded.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kRecoveryApplied) {
      recovery_noted = true;
    }
  }
  // Either a rung recovered (and said so) or the ladder bottomed out at
  // kSerial, which always terminates.
  EXPECT_TRUE(recovery_noted ||
              guarded.level == degrade::DegradationLevel::kSerial);
  ASSERT_EQ(guarded.result.allocation.size(), graph.node_count());
  for (const double a : guarded.result.allocation) {
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_GE(a, 1.0);
  }
}

TEST(Recovery, StartLevelSkipsTheEarlierRungs) {
  Rng rng(5);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto guarded = solver::allocate_with_recovery(
      model, 8.0, {}, {}, degrade::DegradationLevel::kAreaProportional);
  EXPECT_GE(static_cast<int>(guarded.level),
            static_cast<int>(degrade::DegradationLevel::kAreaProportional));
  EXPECT_TRUE(guarded.result.finite());
  // Rung 3 is the analytic allocation: identical to calling it directly.
  const auto direct = solver::area_proportional_allocation(model, 8.0);
  ASSERT_EQ(guarded.result.allocation.size(), direct.allocation.size());
  for (std::size_t i = 0; i < direct.allocation.size(); ++i) {
    EXPECT_DOUBLE_EQ(guarded.result.allocation[i], direct.allocation[i]);
  }
}

// ---- deterministic work-unit budget ----------------------------------------------

TEST(Budget, ExhaustionIsClassifiedAndDeterministic) {
  Rng rng(17);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  solver::ConvexAllocatorConfig config;
  config.work_unit_budget = 5;  // far below what convergence needs
  const auto a = solver::ConvexAllocator(config).allocate(model, 16.0);
  EXPECT_EQ(a.status, solver::SolveStatus::kBudgetExhausted);
  EXPECT_FALSE(a.converged);
  EXPECT_LE(a.iterations, config.work_unit_budget);
  EXPECT_TRUE(a.finite());  // best-so-far point is still usable
  // Bit-identical across runs: the budget counts iterations, not time.
  const auto b = solver::ConvexAllocator(config).allocate(model, 16.0);
  EXPECT_EQ(b.iterations, a.iterations);
  ASSERT_EQ(b.allocation.size(), a.allocation.size());
  for (std::size_t i = 0; i < a.allocation.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.allocation[i], a.allocation[i]);
  }
}

TEST(Budget, LargeBudgetDoesNotChangeTheResult) {
  Rng rng(19);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto unbudgeted = solver::ConvexAllocator{}.allocate(model, 16.0);
  solver::ConvexAllocatorConfig config;
  config.work_unit_budget = 1u << 20;  // never binds
  const auto budgeted = solver::ConvexAllocator(config).allocate(model, 16.0);
  EXPECT_NE(budgeted.status, solver::SolveStatus::kBudgetExhausted);
  ASSERT_EQ(budgeted.allocation.size(), unbudgeted.allocation.size());
  for (std::size_t i = 0; i < unbudgeted.allocation.size(); ++i) {
    EXPECT_DOUBLE_EQ(budgeted.allocation[i], unbudgeted.allocation[i]);
  }
}

// ---- post-schedule invariant gate -------------------------------------------------

TEST(InvariantGate, CleanScheduleHasNoFindings) {
  Rng rng(23);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  const auto psa = sched::prioritized_schedule(model, alloc.allocation, 16);
  const auto findings = sched::check_schedule_invariants(model, psa, 16);
  EXPECT_TRUE(findings.empty()) << degrade::format_diagnostics(findings);
}

TEST(InvariantGate, FlagsNonPowerOfTwoAllocation) {
  Rng rng(29);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  auto psa = sched::prioritized_schedule(model, alloc.allocation, 16);
  ASSERT_FALSE(psa.allocation.empty());
  psa.allocation[psa.allocation.size() / 2] = 3;  // not a power of two
  const auto findings = sched::check_schedule_invariants(model, psa, 16);
  bool found = false;
  for (const auto& d : findings) {
    if (d.code == degrade::DiagnosticCode::kInvariantAllocationNotPow2) {
      found = true;
      EXPECT_EQ(d.severity, degrade::Severity::kError);
    }
  }
  EXPECT_TRUE(found);
}

TEST(InvariantGate, FlagsAllocationAbovePb) {
  Rng rng(31);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  auto psa = sched::prioritized_schedule(model, alloc.allocation, 16);
  ASSERT_GT(psa.pb, 0u);
  psa.allocation[0] = psa.pb * 2;  // a power of two, but above PB
  const auto findings = sched::check_schedule_invariants(model, psa, 16);
  bool found = false;
  for (const auto& d : findings) {
    if (d.code == degrade::DiagnosticCode::kInvariantAllocationOutOfBounds) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(InvariantGate, FlagsNonFiniteMakespan) {
  Rng rng(37);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  auto psa = sched::prioritized_schedule(model, alloc.allocation, 16);
  psa.finish_time = kNaN;
  const auto findings = sched::check_schedule_invariants(model, psa, 16);
  bool found = false;
  for (const auto& d : findings) {
    if (d.code == degrade::DiagnosticCode::kInvariantNonFiniteMakespan) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- pipeline-level behavior -------------------------------------------------------

core::PipelineConfig tiny_pipeline(std::uint64_t p) {
  core::PipelineConfig config;
  config.processors = p;
  config.machine.size = static_cast<std::uint32_t>(p);
  config.machine.noise_sigma = 0.0;
  // Synthetic graphs need no kernel fits; skip calibration entirely.
  config.preset_calibration = calibrate::CalibrationBundle{
      cost::MachineParams{}, cost::KernelCostTable{}};
  config.solver.continuation_rounds = 3;
  config.solver.max_inner_iterations = 120;
  return config;
}

TEST(PipelineDegrade, CleanRunReportsNoDegradation) {
  Rng rng(41);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const core::Compiler compiler(tiny_pipeline(8));
  const auto report = compiler.compile_and_run(graph);
  EXPECT_FALSE(report.degraded());
  EXPECT_TRUE(report.diagnostics.empty())
      << degrade::format_diagnostics(report.diagnostics);
  // The JSON export must not grow a degradation block on clean runs.
  const std::string json = core::report_to_json(report).dump();
  EXPECT_EQ(json.find("degradation"), std::string::npos);
}

TEST(PipelineDegrade, PathologicalGraphDegradesVisibly) {
  // NaN and negative taus: sanitization repairs the parameters and the
  // run completes with the anomalies on record.
  const mdg::Mdg graph = two_node_graph(0.1, kNaN, 0.1, -1.0);
  const core::Compiler compiler(tiny_pipeline(8));
  const auto report = compiler.compile_and_run(graph);
  EXPECT_FALSE(report.diagnostics.empty());
  ASSERT_TRUE(report.psa.has_value());
  EXPECT_TRUE(std::isfinite(report.psa->finish_time));
  // The released schedule is valid against the sanitized model the
  // pipeline scheduled with, despite the pathological raw parameters.
  const cost::CostModel sanitized(graph, cost::MachineParams{},
                                  cost::KernelCostTable{},
                                  cost::ParamPolicy::kSanitize);
  EXPECT_NO_THROW(report.psa->schedule.validate(sanitized));
  // The JSON export carries the degradation block.
  const std::string json = core::report_to_json(report).dump();
  EXPECT_NE(json.find("degradation"), std::string::npos);
  EXPECT_NE(json.find("diagnostics"), std::string::npos);
}

TEST(PipelineDegrade, StrictModeThrowsOnPathology) {
  const mdg::Mdg graph = two_node_graph(0.1, kNaN, 0.1, 1.0);
  core::PipelineConfig config = tiny_pipeline(8);
  config.degradation.strict = true;
  const core::Compiler compiler(config);
  EXPECT_THROW(compiler.compile_and_run(graph), Error);
}

TEST(PipelineDegrade, DisabledPolicyStillCollectsDiagnostics) {
  const mdg::Mdg graph = two_node_graph(0.1, 1e-10, 0.1, 1e10);
  core::PipelineConfig config = tiny_pipeline(8);
  config.degradation.enabled = false;
  const core::Compiler compiler(config);
  // Range warning only: the legacy path still completes.
  const auto report = compiler.compile_and_run(graph);
  EXPECT_FALSE(report.degraded());
  bool found = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kTauDynamicRange) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PipelineDegrade, SummaryMentionsDegradationOnlyWhenDegraded) {
  Rng rng(43);
  const mdg::Mdg clean_graph = mdg::random_mdg(rng);
  const core::Compiler compiler(tiny_pipeline(8));
  const auto clean = compiler.compile_and_run(clean_graph);
  EXPECT_EQ(clean.summary().find("DEGRADED"), std::string::npos);

  const mdg::Mdg bad_graph = two_node_graph(0.1, kNaN, 0.1, kNaN);
  const auto degraded = compiler.compile_and_run(bad_graph);
  if (degraded.degraded()) {
    EXPECT_NE(degraded.summary().find("DEGRADED"), std::string::npos);
  }
}

}  // namespace
}  // namespace paradigm
