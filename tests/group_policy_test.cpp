// Tests for the aligned-blocks (buddy) group policy.
#include <gtest/gtest.h>

#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/bounds.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm::sched {
namespace {

cost::CostModel synthetic_model(const mdg::Mdg& graph) {
  return cost::CostModel(graph, cost::MachineParams{},
                         cost::KernelCostTable{});
}

TEST(GroupPolicy, AlignedBlocksAreContiguousAndAligned) {
  Rng rng(17);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  const std::uint64_t p = 32;
  const auto alloc = solver::ConvexAllocator{}.allocate(
      model, static_cast<double>(p));
  auto rounded = round_allocation(alloc.allocation, p);
  rounded = bound_allocation(std::move(rounded),
                             optimal_processor_bound(p));
  const Schedule schedule =
      list_schedule(model, rounded, p, ListPriority::kLowestEst,
                    GroupPolicy::kAlignedBlocks);
  schedule.validate(model);
  for (const auto& sn : schedule.placements_in_start_order()) {
    if (sn.ranks.empty()) continue;
    const std::size_t k = sn.ranks.size();
    // Aligned start and contiguous ranks.
    EXPECT_EQ(sn.ranks.front() % k, 0u);
    for (std::size_t i = 1; i < k; ++i) {
      EXPECT_EQ(sn.ranks[i], sn.ranks[i - 1] + 1);
    }
  }
}

TEST(GroupPolicy, RejectsNonPowerOfTwoAllocations) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  std::vector<std::uint64_t> alloc(graph.node_count(), 3);
  EXPECT_THROW(list_schedule(model, alloc, 8, ListPriority::kLowestEst,
                             GroupPolicy::kAlignedBlocks),
               Error);
}

TEST(GroupPolicy, AlignedMatchesScatteredOnFigure1) {
  // With balanced power-of-two groups, the aligned policy should find
  // the same makespan as the scattered one on the small example.
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const Schedule scattered = list_schedule(model, alloc, 4);
  const Schedule aligned =
      list_schedule(model, alloc, 4, ListPriority::kLowestEst,
                    GroupPolicy::kAlignedBlocks);
  aligned.validate(model);
  EXPECT_DOUBLE_EQ(aligned.makespan(), scattered.makespan());
}

TEST(GroupPolicy, AlignedNeverMuchWorseOnRandomGraphs) {
  // Restricting groups to aligned blocks can fragment the timeline, but
  // with power-of-two-everything the loss stays small.
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const mdg::Mdg graph = mdg::random_mdg(rng);
    const cost::CostModel model = synthetic_model(graph);
    const std::uint64_t p = 16;
    const auto alloc = solver::ConvexAllocator{}.allocate(
        model, static_cast<double>(p));
    auto rounded = round_allocation(alloc.allocation, p);
    rounded = bound_allocation(std::move(rounded),
                               optimal_processor_bound(p));
    const double scattered =
        list_schedule(model, rounded, p).makespan();
    const double aligned =
        list_schedule(model, rounded, p, ListPriority::kLowestEst,
                      GroupPolicy::kAlignedBlocks)
            .makespan();
    EXPECT_LE(aligned, 1.5 * scattered) << "trial " << trial;
    EXPECT_GE(aligned, scattered * 0.99) << "trial " << trial;
  }
}

}  // namespace
}  // namespace paradigm::sched
