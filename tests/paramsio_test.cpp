// Tests for calibration persistence and the pipeline's preset mode.
#include <gtest/gtest.h>

#include "calibrate/paramsio.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "support/error.hpp"

namespace paradigm::calibrate {
namespace {

CalibrationBundle sample_bundle() {
  CalibrationBundle bundle;
  bundle.machine.t_ss = 777.56e-6;
  bundle.machine.t_ps = 486.98e-9;
  bundle.machine.t_sr = 465.58e-6;
  bundle.machine.t_pr = 426.25e-9;
  bundle.machine.t_n = 0.0;
  bundle.kernels.set(cost::KernelKey{mdg::LoopOp::kMul, 64, 64, 64},
                     cost::AmdahlParams{0.121, 0.29847});
  bundle.kernels.set(cost::KernelKey{mdg::LoopOp::kAdd, 64, 64, 0},
                     cost::AmdahlParams{0.067, 0.00373});
  bundle.kernels.set(cost::KernelKey{mdg::LoopOp::kTranspose, 32, 16, 0},
                     cost::AmdahlParams{0.03, 0.0002});
  return bundle;
}

TEST(ParamsIo, RoundTripExact) {
  const CalibrationBundle original = sample_bundle();
  const std::string text = write_calibration(original);
  const CalibrationBundle round = parse_calibration(text);
  EXPECT_DOUBLE_EQ(round.machine.t_ss, original.machine.t_ss);
  EXPECT_DOUBLE_EQ(round.machine.t_pr, original.machine.t_pr);
  EXPECT_EQ(round.kernels.size(), original.kernels.size());
  const auto key = cost::KernelKey{mdg::LoopOp::kMul, 64, 64, 64};
  EXPECT_DOUBLE_EQ(round.kernels.get(key).alpha,
                   original.kernels.get(key).alpha);
  EXPECT_DOUBLE_EQ(round.kernels.get(key).tau,
                   original.kernels.get(key).tau);
  // Fixed point.
  EXPECT_EQ(write_calibration(round), text);
}

TEST(ParamsIo, ParsesCommentsAndBlankLines) {
  const CalibrationBundle bundle = parse_calibration(R"(
# saved calibration
machine t_ss=1e-4 t_ps=1e-7 t_sr=1e-4 t_pr=1e-7 t_n=0

kernel mul 8 8 8 alpha=0.1 tau=0.5  # inline comment? no, trailing junk
)");
  EXPECT_DOUBLE_EQ(bundle.machine.t_ss, 1e-4);
  EXPECT_TRUE(bundle.kernels.contains(
      cost::KernelKey{mdg::LoopOp::kMul, 8, 8, 8}));
}

TEST(ParamsIo, Errors) {
  EXPECT_THROW(parse_calibration("bogus line"), Error);
  EXPECT_THROW(parse_calibration("machine t_ss=1"), Error);
  EXPECT_THROW(parse_calibration(
                   "machine t_ss=1 t_ps=1 t_sr=1 t_pr=1 t_n=zero"),
               Error);
  EXPECT_THROW(parse_calibration("machine t_ss=1 t_ps=1 t_sr=1 t_pr=1 "
                                 "t_n=0\nkernel fly 1 1 0 alpha=0 tau=1"),
               Error);
  // Missing machine line.
  EXPECT_THROW(parse_calibration("kernel mul 8 8 8 alpha=0.1 tau=0.5"),
               Error);
}

TEST(ParamsIo, PipelinePresetSkipsCalibration) {
  // With a preset the pipeline must use exactly those numbers.
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  CalibrationBundle bundle;
  bundle.machine = cost::MachineParams::cm5_paper();
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (!bundle.kernels.contains(key)) {
      bundle.kernels.set(key, cost::AmdahlParams{0.1, 0.05});
    }
  }
  core::PipelineConfig config;
  config.processors = 8;
  config.machine.size = 8;
  config.machine.noise_sigma = 0.0;
  config.preset_calibration = bundle;
  const core::Compiler compiler(config);
  const core::PipelineReport report = compiler.compile_and_run(graph);
  EXPECT_DOUBLE_EQ(report.fitted_machine.t_ss, bundle.machine.t_ss);
  EXPECT_DOUBLE_EQ(
      report.kernel_table
          .get(cost::KernelKey{mdg::LoopOp::kMul, 32, 32, 32})
          .tau,
      0.05);
}

}  // namespace
}  // namespace paradigm::calibrate
