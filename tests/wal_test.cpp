// WAL unit tests (DESIGN §12): record round-trip, header validation,
// torn-tail truncation, salvage-prefix reads, version gating, the
// deterministic CrashPoint hook, and the sync-policy durability
// contract (DESIGN §14) exercised through an injected Vfs.
#include "support/wal.hpp"

#include <gtest/gtest.h>

#include "support/vfs.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace paradigm::wal {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wal_test_" + std::string(
                              ::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "test.wal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_raw() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void write_raw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(WalTest, Crc32MatchesKnownVector) {
  const std::string v = "123456789";
  EXPECT_EQ(crc32(v.data(), v.size()), 0xCBF43926u);
  EXPECT_EQ(crc32(v.data(), 0), 0u);
}

TEST_F(WalTest, RoundTripsRecords) {
  {
    Writer w = Writer::create(path_);
    w.append("alpha");
    w.append("");
    w.append(std::string(1000, 'x') + "\n\0 binary"s);
  }
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "alpha");
  EXPECT_EQ(r.records[1], "");
  EXPECT_EQ(r.records[2], std::string(1000, 'x') + "\n\0 binary"s);
  EXPECT_EQ(r.version, kFormatVersion);
  EXPECT_FALSE(r.salvaged());
  EXPECT_EQ(r.valid_bytes, r.total_bytes);
}

TEST_F(WalTest, CreateRefusesExistingNonEmptyJournal) {
  {
    Writer w = Writer::create(path_);
    w.append("one");
  }
  EXPECT_THROW(Writer::create(path_), Error);
}

TEST_F(WalTest, MissingFileIsError) {
  EXPECT_THROW(read_journal((dir_ / "nope.wal").string()), Error);
}

TEST_F(WalTest, ShortOrBadHeaderIsError) {
  write_raw("PDGM");
  EXPECT_THROW(read_journal(path_), Error);
  write_raw("NOT-A-WAL-HEADER");
  EXPECT_THROW(read_journal(path_), Error);
}

TEST_F(WalTest, CorruptHeaderChecksumIsError) {
  { Writer w = Writer::create(path_); }
  std::string raw = read_raw();
  raw[13] ^= 0x01;  // Header CRC byte.
  write_raw(raw);
  EXPECT_THROW(read_journal(path_), Error);
}

TEST_F(WalTest, NewerFormatVersionIsUsageError) {
  { Writer w = Writer::create(path_, kFormatVersion + 1); }
  EXPECT_THROW(read_journal(path_), UsageError);
  EXPECT_THROW(Writer::open_for_append(path_), UsageError);
}

TEST_F(WalTest, TornTailIsSalvagedNotFatal) {
  {
    Writer w = Writer::create(path_);
    w.append("kept-1");
    w.append("kept-2");
  }
  const std::string full = read_raw();
  // Torn mid-payload of a third record: header promises more bytes
  // than exist.
  std::string torn = full;
  torn += std::string("\x28\x00\x00\x00\x00\x00\x00\x00", 8);
  torn += "only-part";
  write_raw(torn);

  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], "kept-1");
  EXPECT_TRUE(r.salvaged());
  EXPECT_EQ(r.valid_bytes, full.size());
  EXPECT_NE(r.salvage_detail.find("torn record payload"), std::string::npos);
}

TEST_F(WalTest, CorruptPayloadStopsAtSalvagePrefix) {
  {
    Writer w = Writer::create(path_);
    w.append("record-zero");
    w.append("record-one");
    w.append("record-two");
  }
  std::string raw = read_raw();
  // Flip a byte inside record-one's payload: it and everything after
  // must be dropped; record-zero survives.
  const std::size_t target = raw.find("record-one");
  ASSERT_NE(target, std::string::npos);
  raw[target] ^= 0x40;
  write_raw(raw);

  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "record-zero");
  EXPECT_TRUE(r.salvaged());
  EXPECT_NE(r.salvage_detail.find("checksum mismatch"), std::string::npos);
}

TEST_F(WalTest, ImplausibleLengthPrefixIsSalvage) {
  {
    Writer w = Writer::create(path_);
    w.append("good");
  }
  std::string raw = read_raw();
  raw += std::string("\xFF\xFF\xFF\xFF\x00\x00\x00\x00", 8);
  write_raw(raw);
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_TRUE(r.salvaged());
  EXPECT_NE(r.salvage_detail.find("implausible record length"),
            std::string::npos);
}

TEST_F(WalTest, OpenForAppendTruncatesTornTailAndContinues) {
  {
    Writer w = Writer::create(path_);
    w.append("kept");
  }
  const std::uint64_t clean_size = fs::file_size(path_);
  write_raw(read_raw() + "half-written-garbage");

  ReadResult r;
  {
    Writer w = Writer::open_for_append(path_, &r);
    EXPECT_TRUE(r.salvaged());
    w.append("after-recovery");
  }
  EXPECT_GT(fs::file_size(path_), clean_size);
  const ReadResult reread = read_journal(path_);
  ASSERT_EQ(reread.records.size(), 2u);
  EXPECT_EQ(reread.records[0], "kept");
  EXPECT_EQ(reread.records[1], "after-recovery");
  EXPECT_FALSE(reread.salvaged());
}

TEST_F(WalTest, CrashPointTripsAfterExactlyNAppends) {
  CrashPoint crash;
  crash.arm(2);
  Writer w = Writer::create(path_);
  w.set_crash_point(&crash);
  w.append("first");
  w.append("second");
  EXPECT_THROW(w.append("never-durable"), CrashInjected);

  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_FALSE(r.salvaged());  // Clean-boundary crash: no torn bytes.
}

TEST_F(WalTest, TornCrashLeavesPartialRecordForRecovery) {
  CrashPoint crash;
  crash.arm(1, /*torn=*/true);
  {
    Writer w = Writer::create(path_);
    w.set_crash_point(&crash);
    w.append("durable");
    EXPECT_THROW(w.append("this-record-tears"), CrashInjected);
  }
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "durable");
  EXPECT_TRUE(r.salvaged());  // The partial record is on disk.

  ReadResult reopened;
  { Writer w = Writer::open_for_append(path_, &reopened); }
  EXPECT_TRUE(reopened.salvaged());
  EXPECT_FALSE(read_journal(path_).salvaged());  // Tail now truncated.
}

TEST_F(WalTest, CrashInjectedCarriesDurableCount) {
  CrashPoint crash;
  crash.arm(3);
  Writer w = Writer::create(path_);
  w.set_crash_point(&crash);
  for (int i = 0; i < 3; ++i) w.append("r");
  try {
    w.append("boom");
    FAIL() << "expected CrashInjected";
  } catch (const CrashInjected& e) {
    EXPECT_EQ(e.durable_appends(), 3u);
  }
}

TEST_F(WalTest, ParseSyncPolicyAcceptsTheThreeNamesOnly) {
  EXPECT_EQ(parse_sync_policy("always"), SyncPolicy::kAlways);
  EXPECT_EQ(parse_sync_policy("batch"), SyncPolicy::kBatch);
  EXPECT_EQ(parse_sync_policy("never"), SyncPolicy::kNever);
  EXPECT_THROW(parse_sync_policy("sometimes"), UsageError);
  EXPECT_THROW(parse_sync_policy(""), UsageError);
  EXPECT_STREQ(to_string(SyncPolicy::kBatch), "batch");
}

TEST_F(WalTest, SyncPolicyControlsWhenTheFileIsSynced) {
  // kAlways: header sync + one sync per append. kNever: zero syncs
  // ever. kBatch: header sync at create, then only explicit sync().
  const struct {
    SyncPolicy policy;
    std::size_t expect_syncs;
  } cases[] = {{SyncPolicy::kAlways, 4u},   // header + 3 appends
               {SyncPolicy::kBatch, 2u},    // header + explicit sync()
               {SyncPolicy::kNever, 0u}};
  for (const auto& c : cases) {
    vfs::FaultyVfs faulty(vfs::Vfs::real());
    fs::remove(path_);
    {
      Writer w = Writer::create(path_, kFormatVersion, &faulty, c.policy);
      w.append("a");
      w.append("b");
      w.append("c");
      if (c.policy == SyncPolicy::kBatch) w.sync();
    }
    EXPECT_EQ(faulty.syncs(), c.expect_syncs)
        << "policy=" << to_string(c.policy);
    EXPECT_EQ(read_journal(path_).records.size(), 3u);
  }
}

TEST_F(WalTest, ShortWriteTearsInsideTheRecordAndSalvages) {
  // The record head and payload go down in ONE append, so an injected
  // short write tears inside the record: read_journal must salvage the
  // durable prefix and open_for_append must truncate the torn tail.
  vfs::FaultPlan plan;
  plan.fail_append_after = 3;  // header, "alpha", "beta" land; then tear.
  plan.append_fault = vfs::FaultKind::kShortWrite;
  plan.short_write_fraction = 0.5;
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);
  {
    Writer w = Writer::create(path_, kFormatVersion, &faulty,
                              SyncPolicy::kNever);
    w.append("alpha");
    w.append("beta");
    EXPECT_THROW(w.append("gamma-never-lands"), vfs::StorageError);
    // good_end() still points at the last complete record; the torn
    // bytes after it are dead weight the writer can shed itself.
    EXPECT_LT(w.good_end(), fs::file_size(path_));
    w.truncate_to_good();
    EXPECT_EQ(w.good_end(), fs::file_size(path_));
  }
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1], "beta");
  EXPECT_FALSE(r.salvaged());  // truncate_to_good already cleaned up.
}

TEST_F(WalTest, OpenForAppendSalvagesThroughTheVfsSeam) {
  {
    Writer w = Writer::create(path_);
    w.append("keep");
  }
  // Simulate a torn append from a crashed writer: raw garbage tail.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "\xff\xff\xff\xff torn";
  }
  vfs::FaultyVfs faulty(vfs::Vfs::real());
  ReadResult prior;
  {
    Writer w = Writer::open_for_append(path_, &prior, &faulty,
                                       SyncPolicy::kBatch);
    w.append("appended");
    w.sync();
  }
  EXPECT_TRUE(prior.salvaged());
  ASSERT_EQ(prior.records.size(), 1u);
  // The salvage truncation went through the injected Vfs, not around it.
  bool saw_truncate = false;
  for (const auto& op : faulty.log()) {
    if (op.kind == vfs::OpRecord::Kind::kTruncate) saw_truncate = true;
  }
  EXPECT_TRUE(saw_truncate);
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1], "appended");
  EXPECT_FALSE(r.salvaged());
}

TEST_F(WalTest, EnospcOnAppendSurfacesAsStructuredStorageError) {
  vfs::FaultPlan plan;
  plan.fail_append_after = 2;
  plan.append_fault = vfs::FaultKind::kEnospc;
  plan.short_write_fraction = 0.0;
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);
  Writer w =
      Writer::create(path_, kFormatVersion, &faulty, SyncPolicy::kNever);
  w.append("fits");
  try {
    w.append("device is full");
    FAIL() << "append past the device budget must throw";
  } catch (const vfs::StorageError& e) {
    EXPECT_EQ(e.kind(), vfs::FaultKind::kEnospc);
    EXPECT_EQ(e.path(), path_);
    EXPECT_NE(std::string(e.what()).find("append"), std::string::npos);
  }
  // The clean failure wrote nothing: the journal is not even torn.
  EXPECT_EQ(read_journal(path_).records.size(), 1u);
  EXPECT_FALSE(read_journal(path_).salvaged());
}

}  // namespace
}  // namespace paradigm::wal
