// WAL unit tests (DESIGN §12): record round-trip, header validation,
// torn-tail truncation, salvage-prefix reads, version gating, and the
// deterministic CrashPoint hook.
#include "support/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace paradigm::wal {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wal_test_" + std::string(
                              ::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "test.wal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_raw() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void write_raw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(WalTest, Crc32MatchesKnownVector) {
  const std::string v = "123456789";
  EXPECT_EQ(crc32(v.data(), v.size()), 0xCBF43926u);
  EXPECT_EQ(crc32(v.data(), 0), 0u);
}

TEST_F(WalTest, RoundTripsRecords) {
  {
    Writer w = Writer::create(path_);
    w.append("alpha");
    w.append("");
    w.append(std::string(1000, 'x') + "\n\0 binary"s);
  }
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "alpha");
  EXPECT_EQ(r.records[1], "");
  EXPECT_EQ(r.records[2], std::string(1000, 'x') + "\n\0 binary"s);
  EXPECT_EQ(r.version, kFormatVersion);
  EXPECT_FALSE(r.salvaged());
  EXPECT_EQ(r.valid_bytes, r.total_bytes);
}

TEST_F(WalTest, CreateRefusesExistingNonEmptyJournal) {
  {
    Writer w = Writer::create(path_);
    w.append("one");
  }
  EXPECT_THROW(Writer::create(path_), Error);
}

TEST_F(WalTest, MissingFileIsError) {
  EXPECT_THROW(read_journal((dir_ / "nope.wal").string()), Error);
}

TEST_F(WalTest, ShortOrBadHeaderIsError) {
  write_raw("PDGM");
  EXPECT_THROW(read_journal(path_), Error);
  write_raw("NOT-A-WAL-HEADER");
  EXPECT_THROW(read_journal(path_), Error);
}

TEST_F(WalTest, CorruptHeaderChecksumIsError) {
  { Writer w = Writer::create(path_); }
  std::string raw = read_raw();
  raw[13] ^= 0x01;  // Header CRC byte.
  write_raw(raw);
  EXPECT_THROW(read_journal(path_), Error);
}

TEST_F(WalTest, NewerFormatVersionIsUsageError) {
  { Writer w = Writer::create(path_, kFormatVersion + 1); }
  EXPECT_THROW(read_journal(path_), UsageError);
  EXPECT_THROW(Writer::open_for_append(path_), UsageError);
}

TEST_F(WalTest, TornTailIsSalvagedNotFatal) {
  {
    Writer w = Writer::create(path_);
    w.append("kept-1");
    w.append("kept-2");
  }
  const std::string full = read_raw();
  // Torn mid-payload of a third record: header promises more bytes
  // than exist.
  std::string torn = full;
  torn += std::string("\x28\x00\x00\x00\x00\x00\x00\x00", 8);
  torn += "only-part";
  write_raw(torn);

  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], "kept-1");
  EXPECT_TRUE(r.salvaged());
  EXPECT_EQ(r.valid_bytes, full.size());
  EXPECT_NE(r.salvage_detail.find("torn record payload"), std::string::npos);
}

TEST_F(WalTest, CorruptPayloadStopsAtSalvagePrefix) {
  {
    Writer w = Writer::create(path_);
    w.append("record-zero");
    w.append("record-one");
    w.append("record-two");
  }
  std::string raw = read_raw();
  // Flip a byte inside record-one's payload: it and everything after
  // must be dropped; record-zero survives.
  const std::size_t target = raw.find("record-one");
  ASSERT_NE(target, std::string::npos);
  raw[target] ^= 0x40;
  write_raw(raw);

  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "record-zero");
  EXPECT_TRUE(r.salvaged());
  EXPECT_NE(r.salvage_detail.find("checksum mismatch"), std::string::npos);
}

TEST_F(WalTest, ImplausibleLengthPrefixIsSalvage) {
  {
    Writer w = Writer::create(path_);
    w.append("good");
  }
  std::string raw = read_raw();
  raw += std::string("\xFF\xFF\xFF\xFF\x00\x00\x00\x00", 8);
  write_raw(raw);
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_TRUE(r.salvaged());
  EXPECT_NE(r.salvage_detail.find("implausible record length"),
            std::string::npos);
}

TEST_F(WalTest, OpenForAppendTruncatesTornTailAndContinues) {
  {
    Writer w = Writer::create(path_);
    w.append("kept");
  }
  const std::uint64_t clean_size = fs::file_size(path_);
  write_raw(read_raw() + "half-written-garbage");

  ReadResult r;
  {
    Writer w = Writer::open_for_append(path_, &r);
    EXPECT_TRUE(r.salvaged());
    w.append("after-recovery");
  }
  EXPECT_GT(fs::file_size(path_), clean_size);
  const ReadResult reread = read_journal(path_);
  ASSERT_EQ(reread.records.size(), 2u);
  EXPECT_EQ(reread.records[0], "kept");
  EXPECT_EQ(reread.records[1], "after-recovery");
  EXPECT_FALSE(reread.salvaged());
}

TEST_F(WalTest, CrashPointTripsAfterExactlyNAppends) {
  CrashPoint crash;
  crash.arm(2);
  Writer w = Writer::create(path_);
  w.set_crash_point(&crash);
  w.append("first");
  w.append("second");
  EXPECT_THROW(w.append("never-durable"), CrashInjected);

  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_FALSE(r.salvaged());  // Clean-boundary crash: no torn bytes.
}

TEST_F(WalTest, TornCrashLeavesPartialRecordForRecovery) {
  CrashPoint crash;
  crash.arm(1, /*torn=*/true);
  {
    Writer w = Writer::create(path_);
    w.set_crash_point(&crash);
    w.append("durable");
    EXPECT_THROW(w.append("this-record-tears"), CrashInjected);
  }
  const ReadResult r = read_journal(path_);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "durable");
  EXPECT_TRUE(r.salvaged());  // The partial record is on disk.

  ReadResult reopened;
  { Writer w = Writer::open_for_append(path_, &reopened); }
  EXPECT_TRUE(reopened.salvaged());
  EXPECT_FALSE(read_journal(path_).salvaged());  // Tail now truncated.
}

TEST_F(WalTest, CrashInjectedCarriesDurableCount) {
  CrashPoint crash;
  crash.arm(3);
  Writer w = Writer::create(path_);
  w.set_crash_point(&crash);
  for (int i = 0; i < 3; ++i) w.append("r");
  try {
    w.append("boom");
    FAIL() << "expected CrashInjected";
  } catch (const CrashInjected& e) {
    EXPECT_EQ(e.durable_appends(), 3u);
  }
}

}  // namespace
}  // namespace paradigm::wal
