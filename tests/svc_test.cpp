// Tests for the resilient compilation service (DESIGN §11): job-file
// parsing, bounded admission, cooperative deadlines, the logical-clock
// watchdog, the per-class circuit breaker, deterministic retry,
// graceful drain, and the service exit codes.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

/// Small deterministic service configuration: static calibration (no
/// training-set measurement), a reduced solver, and a global deadline
/// so no test job can run unbounded.
ServiceConfig fast_config() {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 40;
  config.pipeline.solver.continuation_rounds = 2;
  config.default_deadline = 200000;
  return config;
}

JobSpec quick_job(std::string id, std::uint64_t arrival = 0) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.graph = GraphKind::kRandom;
  spec.seed = 7;
  spec.nodes = 8;
  spec.processors = 8;
  spec.arrival = arrival;
  return spec;
}

const JobResult& find_result(const ServiceReport& report,
                             const std::string& id) {
  for (const JobResult& r : report.results) {
    if (r.id == id) return r;
  }
  ADD_FAILURE() << "no result for job '" << id << "'";
  static JobResult missing;
  return missing;
}

// ---- Job-file parsing --------------------------------------------------------

TEST(SvcJob, ParseJobLineFull) {
  const JobSpec spec = parse_job_line(
      "job id=a graph=pathological seed=9 nodes=24 p=32 arrival=5 "
      "deadline=100 stall=7 class=fuzz retries=2");
  EXPECT_EQ(spec.id, "a");
  EXPECT_EQ(spec.graph, GraphKind::kPathological);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.nodes, 24u);
  EXPECT_EQ(spec.processors, 32u);
  EXPECT_EQ(spec.arrival, 5u);
  EXPECT_EQ(spec.deadline, 100u);
  EXPECT_EQ(spec.stall_limit, 7u);
  EXPECT_EQ(spec.job_class, "fuzz");
  EXPECT_EQ(spec.retries, 2);
}

TEST(SvcJob, ParseJobLineDefaults) {
  const JobSpec spec = parse_job_line("job id=x");
  EXPECT_EQ(spec.graph, GraphKind::kRandom);
  EXPECT_EQ(spec.job_class, "default");
  EXPECT_EQ(spec.retries, -1);
  EXPECT_EQ(spec.deadline, 0u);
}

TEST(SvcJob, ParseJobLineRejectsMalformed) {
  EXPECT_THROW(parse_job_line("job id=a bogus=1"), Error);
  EXPECT_THROW(parse_job_line("job graph=random"), Error);  // missing id
  EXPECT_THROW(parse_job_line("job id=a graph=cyclic"), Error);
  EXPECT_THROW(parse_job_line("job id=a seed=banana"), Error);
  EXPECT_THROW(parse_job_line("run id=a"), Error);
}

TEST(SvcJob, ParseJobFile) {
  std::istringstream in(
      "# corpus\n"
      "\n"
      "job id=a seed=1\n"
      "job id=b graph=pathological seed=2 class=fuzz\n"
      "drain at=500 grace=100\n");
  const JobFile file = parse_job_file(in);
  ASSERT_EQ(file.jobs.size(), 2u);
  EXPECT_EQ(file.jobs[1].job_class, "fuzz");
  ASSERT_TRUE(file.drain.has_value());
  EXPECT_EQ(file.drain->at, 500u);
  EXPECT_EQ(file.drain->grace, 100u);
}

TEST(SvcJob, ParseJobFileReportsLineNumbers) {
  std::istringstream in("job id=a\n\njob id=b nonsense=1\n");
  try {
    parse_job_file(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(SvcJob, ParseJobFileRejectsDuplicateDrain) {
  std::istringstream in("drain at=1 grace=1\ndrain at=2 grace=2\n");
  EXPECT_THROW(parse_job_file(in), Error);
}

TEST(SvcJob, OutcomeClassification) {
  EXPECT_TRUE(is_hard_failure(JobOutcome::kFailed));
  EXPECT_TRUE(is_hard_failure(JobOutcome::kCancelledWatchdog));
  EXPECT_FALSE(is_hard_failure(JobOutcome::kCancelledDeadline));
  EXPECT_FALSE(is_hard_failure(JobOutcome::kDegraded));
  EXPECT_TRUE(is_rejection(JobOutcome::kRejectedQueueFull));
  EXPECT_TRUE(is_rejection(JobOutcome::kShedBreaker));
  EXPECT_FALSE(is_rejection(JobOutcome::kCancelledDrain));
}

// ---- Admission control -------------------------------------------------------

TEST(Service, BoundedQueueRejectsOverflow) {
  ServiceConfig config = fast_config();
  config.queue_capacity = 1;
  config.slots = 1;
  Service service(config);
  service.submit(quick_job("a"));
  service.submit(quick_job("b"));
  service.submit(quick_job("c"));
  const ServiceReport report = service.run();
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_EQ(find_result(report, "b").outcome,
            JobOutcome::kRejectedQueueFull);
  EXPECT_EQ(find_result(report, "c").outcome,
            JobOutcome::kRejectedQueueFull);
  EXPECT_EQ(find_result(report, "a").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.rejected, 2u);
  EXPECT_EQ(report.exit_code(), 20);
}

TEST(Service, OversizedJobRejected) {
  ServiceConfig config = fast_config();
  config.max_nodes = 16;
  Service service(config);
  JobSpec big = quick_job("big");
  big.nodes = 600;
  service.submit(big);
  service.submit(quick_job("ok"));
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "big").outcome,
            JobOutcome::kRejectedOversized);
  EXPECT_EQ(find_result(report, "big").ticks, 0u);
  EXPECT_EQ(find_result(report, "ok").outcome, JobOutcome::kCompleted);
}

TEST(Service, EqualArrivalBurstRejectsInSubmissionOrder) {
  // An equal-arrival burst against a tiny queue: same-instant arrivals
  // are admitted in submission order, so exactly the first
  // queue_capacity jobs get in and every later one is rejected *in
  // submission order* — at any thread count. This pins the rejection
  // ordering contract the ledger's byte-identity rests on.
  const auto run_burst = [](std::size_t threads) {
    set_thread_count(threads);
    ServiceConfig config = fast_config();
    config.queue_capacity = 2;
    config.slots = 1;
    Service service(config);
    for (int i = 0; i < 10; ++i) {
      service.submit(quick_job("q" + std::to_string(i), 0));
    }
    const ServiceReport report = service.run();
    set_thread_count(0);
    return report;
  };
  const ServiceReport serial = run_burst(1);
  const ServiceReport parallel = run_burst(4);
  ASSERT_EQ(serial.ledger(), parallel.ledger());
  std::vector<std::string> rejected;
  for (const JobResult& r : serial.results) {
    if (r.outcome == JobOutcome::kRejectedQueueFull) {
      rejected.push_back(r.id);
    }
  }
  const std::vector<std::string> expected = {"q2", "q3", "q4", "q5",
                                             "q6", "q7", "q8", "q9"};
  EXPECT_EQ(rejected, expected);
  EXPECT_EQ(serial.rejected, 8u);
  EXPECT_EQ(find_result(serial, "q0").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(find_result(serial, "q1").outcome, JobOutcome::kCompleted);
}

// ---- Deadlines and the watchdog ----------------------------------------------

TEST(Service, DeadlineCancelsWithPartialAccounting) {
  ServiceConfig config = fast_config();
  Service service(config);
  JobSpec doomed = quick_job("doomed");
  doomed.deadline = 50;  // Far below any full pipeline run.
  service.submit(doomed);
  const ServiceReport report = service.run();
  const JobResult& r = find_result(report, "doomed");
  EXPECT_EQ(r.outcome, JobOutcome::kCancelledDeadline);
  // A deadline trip consumes exactly its budget of logical time.
  EXPECT_EQ(r.end - r.start, 50u);
  EXPECT_FALSE(r.detail.empty());
  EXPECT_EQ(report.cancelled, 1u);
  EXPECT_EQ(report.exit_code(), 21);
}

TEST(Service, QueueWaitCountsAgainstDeadline) {
  ServiceConfig config = fast_config();
  config.slots = 1;
  Service service(config);
  service.submit(quick_job("front"));
  JobSpec waiting = quick_job("waiting");
  waiting.deadline = 10;  // Exhausted while queued behind "front".
  service.submit(waiting);
  const ServiceReport report = service.run();
  const JobResult& r = find_result(report, "waiting");
  EXPECT_EQ(r.outcome, JobOutcome::kCancelledDeadline);
  // It never got to run: zero work ticks, decided at slot assignment.
  EXPECT_EQ(r.ticks, 0u);
  EXPECT_EQ(find_result(report, "front").outcome, JobOutcome::kCompleted);
}

TEST(Service, WatchdogTripsOnStall) {
  ServiceConfig config = fast_config();
  Service service(config);
  JobSpec stuck = quick_job("stuck");
  // A stall limit of 1 trips at the first charge that is not preceded
  // by forward progress — a deterministic stand-in for a wedged stage.
  stuck.stall_limit = 1;
  service.submit(stuck);
  service.submit(quick_job("fine"));
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "stuck").outcome,
            JobOutcome::kCancelledWatchdog);
  EXPECT_EQ(find_result(report, "fine").outcome, JobOutcome::kCompleted);
}

// ---- Circuit breaker ---------------------------------------------------------

TEST(Service, BreakerOpensShedsAndRecloses) {
  ServiceConfig config = fast_config();
  config.breaker_threshold = 2;
  config.breaker_cooldown = 100;
  Service service(config);
  // p=5 is not a power of two: the pipeline throws, a deterministic
  // hard failure.
  JobSpec bad1 = quick_job("bad1", 0);
  bad1.processors = 5;
  bad1.job_class = "hot";
  JobSpec bad2 = quick_job("bad2", 10);
  bad2.processors = 5;
  bad2.job_class = "hot";
  // Arrives while the breaker is open -> shed without running.
  JobSpec shed = quick_job("shed", 20);
  shed.job_class = "hot";
  // Arrives after the cooldown -> the half-open probe; it is valid, so
  // the breaker closes again.
  JobSpec probe = quick_job("probe", 200);
  probe.job_class = "hot";
  JobSpec after = quick_job("after", 100000);
  after.job_class = "hot";
  // A different class is never affected.
  JobSpec other = quick_job("other", 20);
  other.job_class = "cold";
  for (const JobSpec& s : {bad1, bad2, shed, probe, after, other}) {
    service.submit(s);
  }
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "bad1").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "bad2").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "shed").outcome, JobOutcome::kShedBreaker);
  EXPECT_EQ(find_result(report, "probe").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(find_result(report, "after").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(find_result(report, "other").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.breaker_opens, 1u);
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.exit_code(), 22);
}

TEST(Service, FailedProbeReopensBreaker) {
  ServiceConfig config = fast_config();
  config.breaker_threshold = 1;
  config.breaker_cooldown = 50;
  Service service(config);
  JobSpec bad1 = quick_job("bad1", 0);
  bad1.processors = 5;
  JobSpec bad_probe = quick_job("bad-probe", 100);
  bad_probe.processors = 5;
  JobSpec shed_again = quick_job("shed-again", 110);
  service.submit(bad1);
  service.submit(bad_probe);
  service.submit(shed_again);
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "bad1").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "bad-probe").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "shed-again").outcome,
            JobOutcome::kShedBreaker);
  EXPECT_EQ(report.breaker_opens, 2u);
}

TEST(Service, FailedProbeReopensWithFreshCooldown) {
  // A failed half-open probe must re-arm the breaker with a *fresh*
  // cooldown measured from the probe's failure, not leave the stale
  // open_until from the original opening behind. With a long cooldown,
  // an arrival after the original window but inside the re-armed one
  // must still be shed — a stale deadline would let it through as a
  // second probe.
  ServiceConfig config = fast_config();
  config.breaker_threshold = 1;
  config.breaker_cooldown = 50000;
  Service service(config);
  JobSpec bad1 = quick_job("bad1", 0);
  bad1.processors = 5;  // Fails fast: opens the breaker at ~t=1.
  // Past the first cooldown -> the half-open probe; it fails too, so
  // the breaker re-opens until ~t=110000.
  JobSpec probe_bad = quick_job("probe-bad", 60000);
  probe_bad.processors = 5;
  // Inside the *re-armed* window (but past the original one, which
  // ended ~t=50001): must be shed, not probed.
  JobSpec shed_b = quick_job("shed-b", 100000);
  // Past the re-armed window: the second probe; valid, so the breaker
  // closes and later work flows normally.
  JobSpec probe_good = quick_job("probe-good", 200000);
  JobSpec final_job = quick_job("final", 400000);
  for (const JobSpec& s : {bad1, probe_bad, shed_b, probe_good, final_job}) {
    service.submit(s);
  }
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "bad1").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "probe-bad").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "shed-b").outcome,
            JobOutcome::kShedBreaker);
  EXPECT_EQ(find_result(report, "probe-good").outcome,
            JobOutcome::kCompleted);
  EXPECT_EQ(find_result(report, "final").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.breaker_opens, 2u);
  EXPECT_EQ(report.shed, 1u);
}

TEST(Service, ProbeDuringDrainRejectedAsDraining) {
  // The half-open probe candidate arrives after the breaker cooldown
  // but while a graceful drain is in effect. Admission checks drain
  // before the breaker, so the job is rejected as draining — it must
  // not slip through as a probe into a service that is shutting down.
  ServiceConfig config = fast_config();
  config.breaker_threshold = 1;
  config.breaker_cooldown = 50;
  Service service(config);
  JobSpec bad = quick_job("bad", 0);
  bad.processors = 5;  // Hard failure: opens the breaker at ~t=1.
  // Arrives at t=60: past the cooldown (open until ~51), past the
  // drain point — a probe candidate in a draining service.
  JobSpec probe = quick_job("probe", 60);
  service.submit(bad);
  service.submit(probe);
  service.drain_at(10, 100000);
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "bad").outcome, JobOutcome::kFailed);
  EXPECT_EQ(find_result(report, "probe").outcome,
            JobOutcome::kRejectedDraining);
  EXPECT_EQ(report.breaker_opens, 1u);
}

// ---- Graceful drain ----------------------------------------------------------

TEST(Service, DrainRejectsArrivalsAndCancelsInFlight) {
  ServiceConfig config = fast_config();
  Service service(config);
  service.submit(quick_job("long", 0));  // Runs far past the grace.
  service.submit(quick_job("late", 10));
  service.drain_at(5, 20);
  const ServiceReport report = service.run();
  const JobResult& in_flight = find_result(report, "long");
  EXPECT_EQ(in_flight.outcome, JobOutcome::kCancelledDrain);
  // Started at 0, drain point 5 + grace 20 = cancelled at 25.
  EXPECT_EQ(in_flight.end, 25u);
  EXPECT_EQ(find_result(report, "late").outcome,
            JobOutcome::kRejectedDraining);
  EXPECT_TRUE(report.drained);
}

TEST(Service, DrainViaJobFileDirective) {
  std::istringstream in(
      "job id=a seed=3 nodes=8 p=8\n"
      "job id=late arrival=1000 seed=3 nodes=8 p=8\n"
      "drain at=900 grace=100000\n");
  const JobFile file = parse_job_file(in);
  Service service(fast_config());
  service.submit_all(file);
  const ServiceReport report = service.run();
  EXPECT_EQ(find_result(report, "a").outcome, JobOutcome::kCompleted);
  EXPECT_EQ(find_result(report, "late").outcome,
            JobOutcome::kRejectedDraining);
}

// ---- Retry -------------------------------------------------------------------

TEST(Service, DegradedJobRetriesDeterministically) {
  ServiceConfig config = fast_config();
  // Any degradation rung qualifies for retry; one retry allowed.
  config.retry_min_level = degrade::DegradationLevel::kMultiStartRetry;
  config.max_retries = 1;
  Service service(config);
  JobSpec hostile = quick_job("hostile");
  hostile.graph = GraphKind::kPathological;
  hostile.seed = 1;
  service.submit(hostile);
  const ServiceReport report = service.run();
  ASSERT_FALSE(report.results.empty());
  const JobResult& first = report.results.front();
  if (first.outcome == JobOutcome::kDegraded) {
    // The first attempt degraded: a retry must have been scheduled and
    // completed as a separate ledger record.
    EXPECT_TRUE(first.retried);
    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.results[1].attempt, 2u);
    EXPECT_GT(report.results[1].arrival, first.end);
    EXPECT_EQ(report.retries, 1u);
    // The allowance is spent: attempt 2 never re-retries.
    EXPECT_FALSE(report.results[1].retried);
  } else {
    EXPECT_EQ(report.results.size(), 1u);
    EXPECT_EQ(report.retries, 0u);
  }

  // The whole run replays byte-identically.
  Service replay(config);
  JobSpec again = hostile;
  replay.submit(again);
  EXPECT_EQ(replay.run().ledger(), report.ledger());
}

// ---- Determinism and the ledger ----------------------------------------------

TEST(Service, LedgerIsByteIdenticalAcrossThreadCounts) {
  const auto run_with = [](std::size_t threads) {
    set_thread_count(threads);
    ServiceConfig config = fast_config();
    config.slots = 3;
    Service service(config);
    for (int i = 0; i < 6; ++i) {
      JobSpec spec = quick_job("j" + std::to_string(i),
                               static_cast<std::uint64_t>(i) * 3);
      spec.seed = static_cast<std::uint64_t>(100 + i);
      service.submit(spec);
    }
    const std::string ledger = service.run().ledger();
    set_thread_count(0);
    return ledger;
  };
  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_EQ(serial, parallel);
}

TEST(Service, ExitCodeSeverityOrder) {
  ServiceReport report;
  EXPECT_EQ(report.exit_code(), 0);
  report.rejected = 1;
  EXPECT_EQ(report.exit_code(), 20);
  report.cancelled = 1;
  EXPECT_EQ(report.exit_code(), 21);
  report.failed = 1;
  EXPECT_EQ(report.exit_code(), 22);
}

// ---- Allocation-reuse cache (DESIGN §13) -------------------------------------

TEST(Service, CacheIsInvisibleInTheLedger) {
  // Same corpus (with repeats), cache on vs off: byte-identical ledger,
  // but the cached run executes one pipeline attempt per distinct job.
  const auto run_with = [](bool cache_on) {
    ServiceConfig config = fast_config();
    config.queue_capacity = 16;
    config.slots = 2;
    config.default_deadline = 0;  // Unlimited: reuse accounting exact.
    config.cache.enabled = cache_on;
    Service service(config);
    for (int i = 0; i < 9; ++i) {
      JobSpec spec = quick_job("r" + std::to_string(i),
                               static_cast<std::uint64_t>(i) * 5);
      spec.seed = static_cast<std::uint64_t>(100 + i % 3);
      service.submit(spec);
    }
    return service.run();
  };
  const ServiceReport off = run_with(false);
  const ServiceReport on = run_with(true);
  EXPECT_EQ(on.ledger(), off.ledger());
  EXPECT_EQ(off.pipeline_runs, 9u);
  EXPECT_EQ(off.cache_hits + off.cache_misses, 0u);
  // Three distinct seeds → three solves; everything else is reuse.
  EXPECT_EQ(on.pipeline_runs + on.coalesced, on.cache_misses);
  EXPECT_LE(on.pipeline_runs, 3u);
  EXPECT_EQ(on.cache_hits + on.cache_misses, 9u);
  EXPECT_GE(on.cache_hits + on.coalesced, 6u);
}

TEST(Service, IdenticalSameInstantJobsCoalesceIntoOneSolve) {
  // Four identical submissions landing in one slot batch: one solve,
  // three coalesced followers, four ledger entries.
  ServiceConfig config = fast_config();
  config.slots = 4;
  config.cache.enabled = true;
  Service service(config);
  for (int i = 0; i < 4; ++i) {
    service.submit(quick_job("dup" + std::to_string(i)));
  }
  const ServiceReport report = service.run();
  EXPECT_EQ(report.pipeline_runs, 1u);
  EXPECT_EQ(report.coalesced, 3u);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 4u);
  ASSERT_EQ(report.results.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const JobResult& r = find_result(report, "dup" + std::to_string(i));
    EXPECT_EQ(r.outcome, JobOutcome::kCompleted);
    // Followers replay the leader's digest: identical timing.
    EXPECT_EQ(r.ticks, report.results.front().ticks);
  }
}

TEST(Service, CoalescingCanBeDisabledIndependently) {
  ServiceConfig config = fast_config();
  config.slots = 4;
  config.cache.enabled = true;
  config.cache.coalesce = false;
  Service service(config);
  for (int i = 0; i < 4; ++i) {
    service.submit(quick_job("dup" + std::to_string(i)));
  }
  const ServiceReport report = service.run();
  // Same-instant duplicates all miss (the batch resolves before any
  // insert), so each runs — but later batches would still hit.
  EXPECT_EQ(report.coalesced, 0u);
  EXPECT_EQ(report.pipeline_runs, 4u);
}

TEST(Service, CacheServesRepeatAcrossBatches) {
  ServiceConfig config = fast_config();
  config.slots = 1;
  config.default_deadline = 0;
  config.cache.enabled = true;
  Service service(config);
  service.submit(quick_job("first", 0));
  service.submit(quick_job("again", 500000));
  const ServiceReport report = service.run();
  EXPECT_EQ(report.pipeline_runs, 1u);
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.cache_misses, 1u);
  const JobResult& a = find_result(report, "first");
  const JobResult& b = find_result(report, "again");
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.outcome, b.outcome);
}

TEST(Service, CacheCountersAreVisibleInObsMetrics) {
  // Reuse must surface in the observability export: hit, miss, and
  // coalesce counters are touched only when the events occur, so a
  // cached run with duplicates names all three.
  obs::reset_all();
  obs::set_mode(obs::Mode::kLogical);
  ServiceConfig config = fast_config();
  config.slots = 2;
  config.cache.enabled = true;
  Service service(config);
  service.submit(quick_job("m0", 0));
  service.submit(quick_job("m1", 0));   // same-instant duplicate: coalesce
  JobSpec late = quick_job("m2", 0);
  late.arrival = 800000;                // later batch: cache hit
  service.submit(late);
  (void)service.run();
  const std::string json = obs::metrics_json();
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();
  EXPECT_NE(json.find("svc.cache_hit"), std::string::npos);
  EXPECT_NE(json.find("svc.cache_miss"), std::string::npos);
  EXPECT_NE(json.find("svc.cache_coalesced"), std::string::npos);
}

TEST(Service, CoreAliasAndSingleRun) {
  core::ServiceConfig config = fast_config();
  core::Service service(config);
  service.submit(quick_job("a"));
  (void)service.run();
  EXPECT_THROW(service.submit(quick_job("b")), Error);
  config.queue_capacity = 0;
  EXPECT_THROW(core::Service bad(config), Error);
}

}  // namespace
}  // namespace paradigm::svc
