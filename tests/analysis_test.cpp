// Tests for the trace busy-breakdown analysis.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "sim/analysis.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"

namespace paradigm::sim {
namespace {

TEST(Analysis, ClassifiesIntervalsByKind) {
  MachineConfig mc;
  mc.size = 2;
  mc.noise_sigma = 0.0;
  MpmdProgram program(2);
  const BlockRect rect{{0, 64}, {0, 64}};
  GroupKernel init;
  init.node = 0;
  init.op = mdg::LoopOp::kInit;
  init.output = "X";
  init.out_rows = 64;
  init.out_cols = 64;
  init.group = {0};
  program.streams[0].push_back(init);
  program.streams[0].push_back(SendBlock{1, 1, "X", rect});
  program.streams[1].push_back(AllocBlock{"Y", rect});
  program.streams[1].push_back(RecvBlock{0, 1, "Y", rect});
  program.streams[1].push_back(CopyBlock{"Y", "Y", rect});

  Simulator simulator(mc);
  const SimResult result = simulator.run(program);
  const BusyBreakdown breakdown = busy_breakdown(simulator);

  const double bytes = 64.0 * 64.0 * 8.0;
  EXPECT_NEAR(breakdown.send,
              mc.send_startup + bytes * mc.send_per_byte, 1e-12);
  EXPECT_NEAR(breakdown.recv,
              mc.recv_startup + bytes * mc.recv_per_byte, 1e-12);
  EXPECT_NEAR(breakdown.copy, 64.0 * 64.0 * mc.elem_touch_time, 1e-12);
  EXPECT_GT(breakdown.compute, 0.0);
  EXPECT_NEAR(breakdown.busy(), result.total_busy, 1e-12);
  EXPECT_NEAR(breakdown.finish, result.finish_time, 1e-12);
  EXPECT_NEAR(breakdown.idle,
              2.0 * result.finish_time - result.total_busy, 1e-12);
}

TEST(Analysis, SpmdIsComputeDominated) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  MachineConfig mc;
  mc.size = 4;
  mc.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop) {
      const auto key = cost::KernelCostTable::key_for(graph, node);
      if (!table.contains(key)) {
        table.set(key, cost::AmdahlParams{0.1, 0.05});
      }
    }
  }
  const cost::CostModel model(graph, cost::MachineParams{}, table);
  const sched::Schedule spmd = sched::spmd_schedule(model, 4);
  const auto generated = codegen::generate_mpmd(graph, spmd);
  Simulator simulator(mc);
  simulator.run(generated.program);
  const BusyBreakdown breakdown = busy_breakdown(simulator);
  // No redistribution at all under SPMD.
  EXPECT_EQ(breakdown.send, 0.0);
  EXPECT_EQ(breakdown.recv, 0.0);
  EXPECT_GT(breakdown.compute_fraction(), 0.5);
  EXPECT_NE(breakdown.summary().find("compute"), std::string::npos);
}

}  // namespace
}  // namespace paradigm::sim
