// Tests for the tooling layer: the JSON writer, the JSON exporters for
// MDG / allocation / schedule / report, and the execution-trace Gantt.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/json_export.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "sim/trace_gantt.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace paradigm {
namespace {

// ---- JSON writer -------------------------------------------------------------

TEST(JsonWriter, Scalars) {
  EXPECT_EQ(Json::null().dump(-1), "null");
  EXPECT_EQ(Json::boolean(true).dump(-1), "true");
  EXPECT_EQ(Json::integer(-42).dump(-1), "-42");
  EXPECT_EQ(Json::string("hi").dump(-1), "\"hi\"");
  EXPECT_EQ(Json::number(1.5).dump(-1), "1.5");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(-1), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonWriter, NonFiniteRejected) {
  EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()),
               Error);
}

TEST(JsonWriter, ArraysAndObjects) {
  Json arr = Json::array();
  arr.push_back(Json::integer(1));
  arr.push_back(Json::integer(2));
  EXPECT_EQ(arr.dump(-1), "[1,2]");

  Json obj = Json::object();
  obj.set("b", Json::integer(2));
  obj.set("a", Json::integer(1));
  // Deterministic (sorted) key order.
  EXPECT_EQ(obj.dump(-1), "{\"a\":1,\"b\":2}");
}

TEST(JsonWriter, TypeMisuseRejected) {
  Json obj = Json::object();
  EXPECT_THROW(obj.push_back(Json::integer(1)), Error);
  Json arr = Json::array();
  EXPECT_THROW(arr.set("k", Json::integer(1)), Error);
}

TEST(JsonWriter, IndentedOutputNests) {
  Json obj = Json::object();
  obj.set("xs", Json::array());
  const std::string s = obj.dump(2);
  EXPECT_NE(s.find("\"xs\": []"), std::string::npos);
}

// ---- exporters -----------------------------------------------------------------

// A PipelineReport's schedules reference the MDG they were built from,
// so the graph must outlive the report — this fixture keeps both.
struct SmallRun {
  mdg::Mdg graph = core::complex_matmul_mdg(32);
  core::PipelineReport report;

  SmallRun() {
    core::PipelineConfig config;
    config.processors = 8;
    config.machine.size = 8;
    config.machine.noise_sigma = 0.0;
    config.calibration.repetitions = 1;
    const core::Compiler compiler(config);
    report = compiler.compile_and_run(graph);
  }
};

TEST(JsonExport, MdgRoundTripKeys) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  const Json j = core::mdg_to_json(graph);
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"nodes\""), std::string::npos);
  EXPECT_NE(s.find("\"edges\""), std::string::npos);
  EXPECT_NE(s.find("\"init_Ar\""), std::string::npos);
  EXPECT_NE(s.find("\"1D\""), std::string::npos);
}

TEST(JsonExport, ReportContainsAllSections) {
  const SmallRun run;
  const std::string s = core::report_to_json(run.report).dump();
  for (const char* key :
       {"\"fitted_machine\"", "\"kernels\"", "\"allocation\"",
        "\"psa_schedule\"", "\"spmd_schedule\"", "\"execution\"",
        "\"mpmd_speedup\"", "\"pb\""}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(JsonExport, ScheduleMakespanMatches) {
  const SmallRun run;
  const Json j = core::schedule_to_json(run.report.psa->schedule);
  const std::string s = j.dump(-1);
  // The serialized makespan value must appear (as a number).
  std::ostringstream expect;
  expect.precision(17);
  expect << run.report.psa->schedule.makespan();
  EXPECT_NE(s.find(expect.str()), std::string::npos);
}

// ---- trace gantt ---------------------------------------------------------------

TEST(TraceGantt, RendersRowsAndLegend) {
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  sim::MachineConfig mc;
  mc.size = 4;
  mc.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop &&
        node.loop.op != mdg::LoopOp::kSynthetic) {
      const auto key = cost::KernelCostTable::key_for(graph, node);
      if (!table.contains(key)) {
        table.set(key, cost::AmdahlParams{0.1, 0.01});
      }
    }
  }
  const cost::CostModel model(graph, cost::MachineParams{}, table);
  const sched::Schedule spmd = sched::spmd_schedule(model, 4);
  const auto generated = codegen::generate_mpmd(graph, spmd);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const std::string gantt = sim::trace_gantt(simulator);
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  EXPECT_NE(gantt.find("P3"), std::string::npos);
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
  EXPECT_NE(gantt.find("Cr"), std::string::npos);
}

TEST(TraceGantt, EmptyTraceHandled) {
  sim::MachineConfig mc;
  mc.size = 2;
  sim::Simulator simulator(mc);
  simulator.run(sim::MpmdProgram(2));
  const std::string gantt = sim::trace_gantt(simulator);
  EXPECT_NE(gantt.find("span 0"), std::string::npos);
}

}  // namespace
}  // namespace paradigm
