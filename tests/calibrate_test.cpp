// Tests for the training-sets calibration: noise-free fits must recover
// the simulator's underlying parameters; noisy fits must stay close;
// the CM-5 receive-pull artifact must make the fitted t_n ~ 0; and the
// per-graph table must cover exactly the kernels the graph uses.
#include <gtest/gtest.h>

#include <cmath>

#include "calibrate/training.hpp"
#include "core/programs.hpp"
#include "support/error.hpp"

namespace paradigm::calibrate {
namespace {

sim::MachineConfig quiet_machine(std::uint32_t size) {
  sim::MachineConfig mc;
  mc.size = size;
  mc.noise_sigma = 0.0;
  return mc;
}

TEST(CalibrateKernel, RecoversAmdahlParametersNoiseFree) {
  const sim::MachineConfig mc = quiet_machine(16);
  CalibrationConfig config;
  config.repetitions = 1;
  const KernelFit fit =
      calibrate_kernel(mc, mdg::LoopOp::kMul, 64, 64, 64, config);

  // tau should be close to the machine's sequential time for the kernel
  // (the per-processor overhead perturbs the fit slightly).
  const double seq = mc.sequential_seconds(mdg::LoopOp::kMul, 64, 64, 64);
  EXPECT_NEAR(fit.params.tau, seq, 0.05 * seq);
  EXPECT_NEAR(fit.params.alpha, mc.mul_timing.serial_fraction, 0.03);
  EXPECT_GT(fit.fit.r_squared, 0.999);

  // Predictions track measurements across all group sizes (Figure 3).
  for (const auto& sample : fit.samples) {
    EXPECT_NEAR(sample.predicted, sample.measured, 0.05 * sample.measured)
        << "p=" << sample.processors;
  }
}

TEST(CalibrateKernel, AddKernelHasSmallerSerialFractionThanMul) {
  const sim::MachineConfig mc = quiet_machine(16);
  CalibrationConfig config;
  config.repetitions = 1;
  const KernelFit add =
      calibrate_kernel(mc, mdg::LoopOp::kAdd, 64, 64, 0, config);
  const KernelFit mul =
      calibrate_kernel(mc, mdg::LoopOp::kMul, 64, 64, 64, config);
  // Table 1's qualitative shape: matrix add is less serial than matrix
  // multiply, and far cheaper overall.
  EXPECT_LT(add.params.alpha, mul.params.alpha);
  EXPECT_LT(add.params.tau, mul.params.tau / 10.0);
}

TEST(CalibrateKernel, NoisyFitStillClose) {
  sim::MachineConfig mc = quiet_machine(16);
  mc.noise_sigma = 0.03;
  CalibrationConfig config;
  config.repetitions = 5;
  const KernelFit fit =
      calibrate_kernel(mc, mdg::LoopOp::kMul, 64, 64, 64, config);
  const double seq = mc.sequential_seconds(mdg::LoopOp::kMul, 64, 64, 64);
  EXPECT_NEAR(fit.params.tau, seq, 0.15 * seq);
  EXPECT_GT(fit.fit.r_squared, 0.98);
}

TEST(CalibrateKernel, SyntheticRejected) {
  const sim::MachineConfig mc = quiet_machine(4);
  EXPECT_THROW(calibrate_kernel(mc, mdg::LoopOp::kSynthetic, 8, 8, 0),
               Error);
}

TEST(CalibrateTransfers, RecoversMessageParametersNoiseFree) {
  const sim::MachineConfig mc = quiet_machine(16);
  CalibrationConfig config;
  config.repetitions = 1;
  const TransferFit fit = calibrate_transfers(mc, config);

  EXPECT_NEAR(fit.params.t_ss, mc.send_startup, 0.1 * mc.send_startup);
  EXPECT_NEAR(fit.params.t_ps, mc.send_per_byte, 0.1 * mc.send_per_byte);
  EXPECT_NEAR(fit.params.t_sr, mc.recv_startup, 0.1 * mc.recv_startup);
  EXPECT_NEAR(fit.params.t_pr, mc.recv_per_byte, 0.1 * mc.recv_per_byte);
  EXPECT_GT(fit.send_fit.r_squared, 0.99);
  EXPECT_GT(fit.recv_fit.r_squared, 0.99);
}

TEST(CalibrateTransfers, NetworkPerByteFitsToZero) {
  // The CM-5 artifact (Table 2): payloads move when the receive is
  // posted, so the measured network delay is a tiny per-message constant
  // and the fitted per-byte network cost is ~0.
  const sim::MachineConfig mc = quiet_machine(16);
  CalibrationConfig config;
  config.repetitions = 1;
  const TransferFit fit = calibrate_transfers(mc, config);
  EXPECT_LT(fit.params.t_n, 1e-10);  // < 0.1 ns/byte
}

TEST(CalibrateTransfers, PredictionsTrackMeasurements) {
  const sim::MachineConfig mc = quiet_machine(16);
  CalibrationConfig config;
  config.repetitions = 1;
  const TransferFit fit = calibrate_transfers(mc, config);
  ASSERT_FALSE(fit.samples.empty());
  for (const auto& sample : fit.samples) {
    EXPECT_NEAR(sample.send_predicted, sample.send_busy,
                0.15 * sample.send_busy + 1e-6);
    EXPECT_NEAR(sample.recv_predicted, sample.recv_busy,
                0.15 * sample.recv_busy + 1e-6);
  }
}

TEST(CalibrateTransfers, CoversBothKindsAndAsymmetry) {
  const sim::MachineConfig mc = quiet_machine(16);
  CalibrationConfig config;
  config.repetitions = 1;
  const TransferFit fit = calibrate_transfers(mc, config);
  bool has_1d = false;
  bool has_2d = false;
  bool has_asym = false;
  for (const auto& s : fit.samples) {
    has_1d |= s.kind == mdg::TransferKind::k1D;
    has_2d |= s.kind == mdg::TransferKind::k2D;
    has_asym |= s.senders != s.receivers;
  }
  EXPECT_TRUE(has_1d);
  EXPECT_TRUE(has_2d);
  EXPECT_TRUE(has_asym);
}

TEST(CalibrateForGraph, TableCoversExactlyTheGraphsKernels) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  const sim::MachineConfig mc = quiet_machine(8);
  CalibrationConfig config;
  config.repetitions = 1;
  const cost::KernelCostTable table =
      calibrate_for_graph(mc, graph, config);
  // init, mul, sub, add at 32x32 — four distinct keys.
  EXPECT_EQ(table.size(), 4u);
  EXPECT_TRUE(table.contains(
      cost::KernelKey{mdg::LoopOp::kMul, 32, 32, 32}));
  EXPECT_TRUE(table.contains(cost::KernelKey{mdg::LoopOp::kInit, 32, 32, 0}));
  EXPECT_TRUE(table.contains(cost::KernelKey{mdg::LoopOp::kAdd, 32, 32, 0}));
  EXPECT_TRUE(table.contains(cost::KernelKey{mdg::LoopOp::kSub, 32, 32, 0}));
}

TEST(Calibrate, DeterministicForFixedSeeds) {
  const sim::MachineConfig mc = quiet_machine(8);
  CalibrationConfig config;
  config.repetitions = 2;
  const KernelFit a =
      calibrate_kernel(mc, mdg::LoopOp::kAdd, 32, 32, 0, config);
  const KernelFit b =
      calibrate_kernel(mc, mdg::LoopOp::kAdd, 32, 32, 0, config);
  EXPECT_DOUBLE_EQ(a.params.alpha, b.params.alpha);
  EXPECT_DOUBLE_EQ(a.params.tau, b.params.tau);
}

}  // namespace
}  // namespace paradigm::calibrate
