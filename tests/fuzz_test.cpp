// The degradation fuzz harness (DESIGN §10): hundreds of seeded
// pathological MDGs — NaN/Inf/negative Amdahl parameters, extreme tau
// ranges, denormals, zero-cost graphs, fan-out explosions, petabyte
// transfers — pushed through the full allocate -> schedule -> simulate
// pipeline. The contract under the default (enabled, lenient) policy:
// never crash, never release a non-finite schedule, always record the
// rung taken. Runs under the `fuzz` ctest label with fixed seeds; a
// failing seed is written to $PARADIGM_FUZZ_ARTIFACT_DIR (when set) so
// CI can archive it and tests/fuzz_corpus/ can grow a regression entry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "core/pipeline.hpp"
#include "cost/sanitize.hpp"
#include "mdg/random_mdg.hpp"
#include "mdg/textio.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "support/degrade.hpp"
#include "support/error.hpp"

namespace paradigm {
namespace {

constexpr std::uint64_t kFuzzSeeds = 500;

core::PipelineConfig fuzz_pipeline_config() {
  core::PipelineConfig config;
  config.processors = 8;
  config.machine.size = 8;
  config.machine.noise_sigma = 0.0;
  // Synthetic nodes carry their own Amdahl parameters; skip calibration.
  config.preset_calibration = calibrate::CalibrationBundle{
      cost::MachineParams{}, cost::KernelCostTable{}};
  // Light descent budget: the harness is about surviving pathology, not
  // about solution quality, and it must finish well under the 60 s
  // ctest timeout.
  config.solver.continuation_rounds = 2;
  config.solver.max_inner_iterations = 60;
  config.solver.work_unit_budget = 400;
  return config;
}

/// Writes the seed, shape class, and MDG text of a failing seed where
/// CI archives artifacts. No-op unless PARADIGM_FUZZ_ARTIFACT_DIR is
/// set.
void dump_artifact(std::uint64_t seed, const std::string& shape,
                   const mdg::Mdg& graph, const std::string& why) {
  const char* dir = std::getenv("PARADIGM_FUZZ_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/fuzz-seed-" + std::to_string(seed) + ".txt";
  std::ofstream out(path);
  out << "# fuzz failure\n# seed: " << seed << "\n# shape: " << shape
      << "\n# reason: " << why << "\n" << mdg::write_mdg(graph);
}

TEST(Fuzz, FullPipelineSurvivesFiveHundredPathologicalSeeds) {
  const core::Compiler compiler(fuzz_pipeline_config());
  std::size_t degraded_runs = 0;
  std::set<std::string> shapes_seen;

  for (std::uint64_t seed = 0; seed < kFuzzSeeds; ++seed) {
    std::string shape;
    const mdg::Mdg graph = mdg::pathological_mdg(seed, &shape);
    shapes_seen.insert(shape);

    core::PipelineReport report;
    try {
      report = compiler.compile_and_run(graph);
    } catch (const Error& e) {
      dump_artifact(seed, shape, graph, std::string("threw: ") + e.what());
      FAIL() << "seed " << seed << " (" << shape
             << ") escaped the ladder: " << e.what();
    } catch (const std::exception& e) {
      dump_artifact(seed, shape, graph,
                    std::string("non-paradigm exception: ") + e.what());
      FAIL() << "seed " << seed << " (" << shape
             << ") threw a non-paradigm exception: " << e.what();
    }

    // Released allocation: finite, and at least one processor per node.
    ASSERT_EQ(report.allocation.allocation.size(), graph.node_count())
        << "seed " << seed;
    for (const double a : report.allocation.allocation) {
      if (!std::isfinite(a) || a < 1.0) {
        dump_artifact(seed, shape, graph, "non-finite or sub-1 allocation");
        FAIL() << "seed " << seed << " (" << shape << ") released p_i=" << a;
      }
    }

    // Released schedule: present, structurally valid, finite makespan.
    ASSERT_TRUE(report.psa.has_value()) << "seed " << seed;
    if (!std::isfinite(report.psa->finish_time) ||
        report.psa->finish_time < 0.0) {
      dump_artifact(seed, shape, graph, "non-finite makespan");
      FAIL() << "seed " << seed << " (" << shape << ") makespan="
             << report.psa->finish_time;
    }
    // Rebuild the model the pipeline used (sanitized exactly when the
    // scan demanded repair) and re-validate the released schedule.
    const auto scan = cost::sanitize_inputs(graph, cost::MachineParams{},
                                            cost::KernelCostTable{});
    const cost::CostModel model(graph, cost::MachineParams{},
                                cost::KernelCostTable{},
                                scan.needs_repair
                                    ? cost::ParamPolicy::kSanitize
                                    : cost::ParamPolicy::kStrict);
    EXPECT_NO_THROW(report.psa->schedule.validate(model))
        << "seed " << seed;

    // Exit-code mapping stays in the documented set {0, 10..15}.
    const int code = degrade::exit_code(report.degradation);
    EXPECT_TRUE(code == 0 || (code >= 10 && code <= 15))
        << "seed " << seed << " code " << code;

    if (report.degraded()) ++degraded_runs;
  }

  // The generator's whole pathology spectrum was exercised and at least
  // one seed forced the ladder past rung 0 — otherwise the harness is
  // not testing the recovery path at all.
  EXPECT_EQ(shapes_seen.size(), 10u);
  EXPECT_GE(degraded_runs, 1u);
}

TEST(Fuzz, DegradedRunsAreDeterministic) {
  // The ladder must be a pure function of the inputs: same seed, same
  // rung, bitwise-same released numbers.
  const core::Compiler compiler(fuzz_pipeline_config());
  for (const std::uint64_t seed : {0ull, 1ull, 4ull, 6ull, 9ull}) {
    const mdg::Mdg graph = mdg::pathological_mdg(seed);
    const auto a = compiler.compile_and_run(graph);
    const auto b = compiler.compile_and_run(graph);
    EXPECT_EQ(a.degradation, b.degradation) << "seed " << seed;
    EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size()) << "seed " << seed;
    ASSERT_EQ(a.allocation.allocation.size(), b.allocation.allocation.size());
    for (std::size_t i = 0; i < a.allocation.allocation.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.allocation.allocation[i],
                       b.allocation.allocation[i])
          << "seed " << seed << " node " << i;
    }
    ASSERT_TRUE(a.psa.has_value());
    ASSERT_TRUE(b.psa.has_value());
    EXPECT_DOUBLE_EQ(a.psa->finish_time, b.psa->finish_time)
        << "seed " << seed;
  }
}

TEST(Fuzz, DegradationIsVisibleInObsMetrics) {
  // A degraded run must surface in the observability export: the
  // pipeline.degradation_level gauge and pipeline.diagnostics counter
  // are touched, so the metrics JSON names them.
  obs::reset_all();
  obs::set_mode(obs::Mode::kLogical);
  const core::Compiler compiler(fuzz_pipeline_config());
  // Walk seeds until one degrades (the previous test guarantees at
  // least one in range exists).
  bool found = false;
  for (std::uint64_t seed = 0; seed < kFuzzSeeds && !found; ++seed) {
    const mdg::Mdg graph = mdg::pathological_mdg(seed);
    const auto report = compiler.compile_and_run(graph);
    if (report.degraded()) found = true;
  }
  const std::string metrics = obs::metrics_json();
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();
  ASSERT_TRUE(found);
  EXPECT_NE(metrics.find("pipeline.degradation_level"), std::string::npos);
  EXPECT_NE(metrics.find("pipeline.diagnostics"), std::string::npos);
}

}  // namespace
}  // namespace paradigm
