// Tests for the matrix-expression front end: lexing, parsing,
// diagnostics, CSE lowering, dimension checking, the reference
// interpreter, and the full compile -> allocate -> schedule -> simulate
// path verified against the interpreter.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "frontend/compile.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"

namespace paradigm::frontend {
namespace {

constexpr const char* kComplexSource = R"(
# complex matrix multiply: C = (Ar + i Ai)(Br + i Bi)
input Ar 32 32 101
input Ai 32 32 102
input Br 32 32 103
input Bi 32 32 104
Cr = Ar * Br - Ai * Bi
Ci = Ar * Bi + Ai * Br
output Cr
output Ci
)";

// ---- lexer ------------------------------------------------------------------

TEST(Lexer, TokenizesOperatorsAndNames) {
  const auto tokens = tokenize("X = foo * (bar + 12)\n");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "X");
  EXPECT_EQ(tokens[1].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[7].number, 12u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, TracksLineNumbersAndComments) {
  const auto tokens = tokenize("a = b\n# comment only\nc = d\n");
  // Find token 'c'.
  for (const auto& token : tokens) {
    if (token.text == "c") {
      EXPECT_EQ(token.line, 3u);
      return;
    }
  }
  FAIL() << "token 'c' not found";
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_THROW(tokenize("a = b @ c"), Error);
}

// ---- parser -----------------------------------------------------------------

TEST(Parser, PrecedenceMulBeforeAdd) {
  const Program program = parse_program(R"(
input A 4 4
input B 4 4
input C 4 4
X = A + B * C
output X
)");
  const Expr& root = *program.assignments[0].value;
  EXPECT_EQ(root.kind, ExprKind::kAdd);
  EXPECT_EQ(root.rhs->kind, ExprKind::kMul);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const Program program = parse_program(R"(
input A 4 4
input B 4 4
input C 4 4
X = (A + B) * C
output X
)");
  const Expr& root = *program.assignments[0].value;
  EXPECT_EQ(root.kind, ExprKind::kMul);
  EXPECT_EQ(root.lhs->kind, ExprKind::kAdd);
}

struct BadSource {
  const char* text;
  const char* reason;
};

class ParserErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserErrors, RejectsWithLineDiagnostic) {
  try {
    parse_program(GetParam().text);
    FAIL() << "expected failure: " << GetParam().reason;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("source line"), std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadSource{"input A 4\nX = A\noutput X", "missing cols"},
        BadSource{"input A 0 4\nX = A\noutput X", "zero dimension"},
        BadSource{"input A 4 4\nX = A +\noutput X", "dangling operator"},
        BadSource{"input A 4 4\nX = (A\noutput X", "unclosed paren"},
        BadSource{"input A 4 4\nX = A B\noutput X", "missing operator"},
        BadSource{"input A 4 4\nX = Y\noutput X", "undefined name"},
        BadSource{"input A 4 4\ninput A 4 4\nX = A\noutput X",
                  "duplicate input"},
        BadSource{"input A 4 4\nX = A * A\nX = A\noutput X",
                  "redefinition"},
        BadSource{"input A 4 4\nX = A * A\noutput Y", "unknown output"},
        BadSource{"input A 4 4\ntranspose = A\noutput transpose",
                  "reserved word"}));

TEST(Parser, RequiresOutputs) {
  EXPECT_THROW(parse_program("input A 4 4\nX = A * A\n"), Error);
}

// ---- lowering ---------------------------------------------------------------

TEST(Compile, ComplexMatmulStructureMatchesHandBuiltGraph) {
  const CompiledProgram compiled = compile_source(kComplexSource);
  // 4 inits + 4 muls + 2 combines + START/STOP = 12, like
  // core::complex_matmul_mdg.
  EXPECT_EQ(compiled.graph.node_count(), 12u);
  EXPECT_EQ(compiled.outputs.size(), 2u);
  EXPECT_EQ(compiled.outputs[0].name, "Cr");
  EXPECT_EQ(compiled.outputs[0].array, "Cr");
  EXPECT_EQ(compiled.cse_hits, 0u);
}

TEST(Compile, CommonSubexpressionsComputedOnce) {
  const CompiledProgram compiled = compile_source(R"(
input A 16 16
input B 16 16
X = (A * B) + (A * B)
Y = A * B
output X
output Y
)");
  // One multiply for all three A*B occurrences.
  std::size_t muls = 0;
  for (const auto& node : compiled.graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop &&
        node.loop.op == mdg::LoopOp::kMul) {
      ++muls;
    }
  }
  EXPECT_EQ(muls, 1u);
  EXPECT_EQ(compiled.cse_hits, 2u);
  // Y is a pure alias of the shared multiply's array.
  EXPECT_EQ(compiled.outputs[1].name, "Y");
  EXPECT_NE(compiled.outputs[1].array, "Y");
}

TEST(Compile, DimensionErrorsDiagnosed) {
  EXPECT_THROW(compile_source(R"(
input A 4 8
input B 4 8
X = A * B
output X
)"),
               Error);
  EXPECT_THROW(compile_source(R"(
input A 4 8
input B 8 4
X = A + B
output X
)"),
               Error);
  // Transpose fixes both.
  const CompiledProgram ok = compile_source(R"(
input A 4 8
input B 4 8
X = A * transpose(B)
Y = A + transpose(transpose(A))
output X
output Y
)");
  EXPECT_EQ(ok.outputs[0].rows, 4u);
  EXPECT_EQ(ok.outputs[0].cols, 4u);
}

// ---- interpreter and end-to-end ----------------------------------------------

TEST(Interpret, MatchesHandBuiltReference) {
  const auto env = interpret_source(kComplexSource);
  const auto ref = core::complex_matmul_reference(32);
  EXPECT_LT(env.at("Cr").max_abs_diff(ref.cr), 1e-12);
  EXPECT_LT(env.at("Ci").max_abs_diff(ref.ci), 1e-12);
}

TEST(Compile, EndToEndSimulationMatchesInterpreter) {
  constexpr const char* source = R"(
input A 24 24
input B 24 24 77
S = A + B
P = S * transpose(A - B)
Q = P * P
output Q
)";
  const CompiledProgram compiled = compile_source(source);

  sim::MachineConfig mc;
  mc.size = 8;
  mc.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : compiled.graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    const auto key = cost::KernelCostTable::key_for(compiled.graph, node);
    if (!table.contains(key)) {
      table.set(key, cost::AmdahlParams{
                         mc.timing_for(key.op).serial_fraction,
                         mc.sequential_seconds(key.op, key.rows, key.cols,
                                               key.inner)});
    }
  }
  const cost::CostModel model(compiled.graph, cost::MachineParams{},
                              table);
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 8.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 8);
  psa.schedule.validate(model);
  const auto generated = codegen::generate_mpmd(compiled.graph,
                                                psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);

  const auto env = interpret_source(source);
  for (const auto& output : compiled.outputs) {
    const Matrix simulated = simulator.assemble_array(
        output.array, output.rows, output.cols);
    const Matrix& expected = env.at(output.name);
    EXPECT_LT(simulated.max_abs_diff(expected),
              1e-9 * (1.0 + expected.frobenius_norm()))
        << output.name;
  }
}

TEST(Compile, DefaultTagsAreStable) {
  // Inputs without explicit tags get deterministic defaults, so two
  // compilations see identical data.
  const char* source = "input A 8 8\nX = A * A\noutput X\n";
  const auto env1 = interpret_source(source);
  const auto env2 = interpret_source(source);
  EXPECT_LT(env1.at("X").max_abs_diff(env2.at("X")), 1e-15);
}

}  // namespace
}  // namespace paradigm::frontend
