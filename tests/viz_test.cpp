// Tests for the SVG visualization layer.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"
#include "viz/charts.hpp"
#include "viz/chrome_trace.hpp"
#include "viz/svg.hpp"

namespace paradigm::viz {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Svg, DocumentStructure) {
  SvgDocument doc(100, 50);
  doc.rect(1, 2, 3, 4, "#ff0000");
  doc.line(0, 0, 10, 10, "#000000");
  doc.text(5, 5, "hello <world> & \"friends\"");
  doc.circle(2, 2, 1, "#00ff00");
  const std::string s = doc.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("hello &lt;world&gt; &amp; &quot;friends&quot;"),
            std::string::npos);
  EXPECT_EQ(count_occurrences(s, "<circle"), 1u);
}

TEST(Svg, InvalidDimensionsRejected) {
  EXPECT_THROW(SvgDocument(0, 10), Error);
}

TEST(Svg, PaletteCycles) {
  EXPECT_EQ(palette_color(0), palette_color(10));
  EXPECT_NE(palette_color(0), palette_color(1));
}

TEST(Charts, ScheduleGanttContainsAllLoopNodes) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const sched::Schedule schedule = sched::list_schedule(model, alloc, 4);
  const std::string svg = schedule_gantt_svg(schedule);
  EXPECT_NE(svg.find("N1"), std::string::npos);
  EXPECT_NE(svg.find("N2"), std::string::npos);
  EXPECT_NE(svg.find("N3"), std::string::npos);
  // One block rect per (node, rank) pair: 4 + 2 + 2 = 8, plus the
  // background and legend rects.
  EXPECT_GE(count_occurrences(svg, "<rect"), 8u);
}

TEST(Charts, TraceGanttRendersIntervals) {
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  sim::MachineConfig mc;
  mc.size = 4;
  mc.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop) {
      const auto key = cost::KernelCostTable::key_for(graph, node);
      if (!table.contains(key)) {
        table.set(key, cost::AmdahlParams{0.1, 0.01});
      }
    }
  }
  const cost::CostModel model(graph, cost::MachineParams{}, table);
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 4.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 4);
  const auto generated = codegen::generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const std::string svg = trace_gantt_svg(simulator);
  EXPECT_NE(svg.find("Simulated execution"), std::string::npos);
  EXPECT_GE(count_occurrences(svg, "<rect"), 10u);
}

TEST(Charts, LineChartAxesAndLegend) {
  const std::string svg = line_chart_svg(
      "Speedups", "processors", "speedup",
      {{"SPMD", {16, 32, 64}, {5.4, 6.3, 6.7}},
       {"MPMD", {16, 32, 64}, {8.7, 13.4, 17.8}}},
      /*x_log2=*/true);
  EXPECT_NE(svg.find("Speedups"), std::string::npos);
  EXPECT_NE(svg.find("SPMD"), std::string::npos);
  EXPECT_NE(svg.find("MPMD"), std::string::npos);
  EXPECT_GE(count_occurrences(svg, "<circle"), 6u);
}

TEST(ChromeTrace, ScheduleEventsWellFormed) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const sched::Schedule schedule = sched::list_schedule(model, alloc, 4);
  const std::string json = chrome_trace_json(schedule);
  // N1 on 4 ranks + N2 on 2 + N3 on 2 = 8 complete events.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 8u);
  EXPECT_NE(json.find("\"name\":\"N1\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(ChromeTrace, SimulatorEventsCoverBusyIntervals) {
  sim::MachineConfig mc;
  mc.size = 2;
  mc.noise_sigma = 0.0;
  sim::MpmdProgram program(2);
  sim::GroupKernel work;
  work.node = 0;
  work.op = mdg::LoopOp::kSynthetic;
  work.cost_override = 0.5;
  work.group = {0, 1};
  program.streams[0].push_back(work);
  program.streams[1].push_back(work);
  sim::Simulator simulator(mc);
  simulator.run(program);
  const std::string json = chrome_trace_json(simulator);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);  // 0.5 s in us
}

TEST(Charts, EmptyAndMismatchedSeriesRejected) {
  EXPECT_THROW(line_chart_svg("t", "x", "y", {}), Error);
  EXPECT_THROW(line_chart_svg("t", "x", "y", {{"bad", {1, 2}, {1}}}),
               Error);
  EXPECT_THROW(
      line_chart_svg("t", "x", "y", {{"neg", {-1, 2}, {1, 2}}}, true),
      Error);
}

}  // namespace
}  // namespace paradigm::viz
