// Tests for the SVG visualization layer and the Chrome-trace exporters,
// including a regression test that hostile span/node names (quotes,
// backslashes, control characters) always come out as well-formed JSON.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "obs/obs.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"
#include "viz/charts.hpp"
#include "viz/chrome_trace.hpp"
#include "viz/svg.hpp"

namespace paradigm::viz {
namespace {

/// Minimal recursive-descent JSON well-formedness checker (the support
/// layer deliberately has no parser). Returns true iff `text` is one
/// complete, syntactically valid JSON value.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const unsigned char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) { ++pos_; return true; }
    return false;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Svg, DocumentStructure) {
  SvgDocument doc(100, 50);
  doc.rect(1, 2, 3, 4, "#ff0000");
  doc.line(0, 0, 10, 10, "#000000");
  doc.text(5, 5, "hello <world> & \"friends\"");
  doc.circle(2, 2, 1, "#00ff00");
  const std::string s = doc.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("hello &lt;world&gt; &amp; &quot;friends&quot;"),
            std::string::npos);
  EXPECT_EQ(count_occurrences(s, "<circle"), 1u);
}

TEST(Svg, InvalidDimensionsRejected) {
  EXPECT_THROW(SvgDocument(0, 10), Error);
}

TEST(Svg, PaletteCycles) {
  EXPECT_EQ(palette_color(0), palette_color(10));
  EXPECT_NE(palette_color(0), palette_color(1));
}

TEST(Charts, ScheduleGanttContainsAllLoopNodes) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const sched::Schedule schedule = sched::list_schedule(model, alloc, 4);
  const std::string svg = schedule_gantt_svg(schedule);
  EXPECT_NE(svg.find("N1"), std::string::npos);
  EXPECT_NE(svg.find("N2"), std::string::npos);
  EXPECT_NE(svg.find("N3"), std::string::npos);
  // One block rect per (node, rank) pair: 4 + 2 + 2 = 8, plus the
  // background and legend rects.
  EXPECT_GE(count_occurrences(svg, "<rect"), 8u);
}

TEST(Charts, TraceGanttRendersIntervals) {
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  sim::MachineConfig mc;
  mc.size = 4;
  mc.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop) {
      const auto key = cost::KernelCostTable::key_for(graph, node);
      if (!table.contains(key)) {
        table.set(key, cost::AmdahlParams{0.1, 0.01});
      }
    }
  }
  const cost::CostModel model(graph, cost::MachineParams{}, table);
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 4.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 4);
  const auto generated = codegen::generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  const std::string svg = trace_gantt_svg(simulator);
  EXPECT_NE(svg.find("Simulated execution"), std::string::npos);
  EXPECT_GE(count_occurrences(svg, "<rect"), 10u);
}

TEST(Charts, LineChartAxesAndLegend) {
  const std::string svg = line_chart_svg(
      "Speedups", "processors", "speedup",
      {{"SPMD", {16, 32, 64}, {5.4, 6.3, 6.7}},
       {"MPMD", {16, 32, 64}, {8.7, 13.4, 17.8}}},
      /*x_log2=*/true);
  EXPECT_NE(svg.find("Speedups"), std::string::npos);
  EXPECT_NE(svg.find("SPMD"), std::string::npos);
  EXPECT_NE(svg.find("MPMD"), std::string::npos);
  EXPECT_GE(count_occurrences(svg, "<circle"), 6u);
}

TEST(ChromeTrace, ScheduleEventsWellFormed) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const sched::Schedule schedule = sched::list_schedule(model, alloc, 4);
  const std::string json = chrome_trace_json(schedule);
  // N1 on 4 ranks + N2 on 2 + N3 on 2 = 8 complete events.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 8u);
  EXPECT_NE(json.find("\"name\":\"N1\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(ChromeTrace, SimulatorEventsCoverBusyIntervals) {
  sim::MachineConfig mc;
  mc.size = 2;
  mc.noise_sigma = 0.0;
  sim::MpmdProgram program(2);
  sim::GroupKernel work;
  work.node = 0;
  work.op = mdg::LoopOp::kSynthetic;
  work.cost_override = 0.5;
  work.group = {0, 1};
  program.streams[0].push_back(work);
  program.streams[1].push_back(work);
  sim::Simulator simulator(mc);
  simulator.run(program);
  const std::string json = chrome_trace_json(simulator);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);  // 0.5 s in us
}

TEST(ChromeTrace, WellFormedJsonOverall) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  const sched::Schedule schedule = sched::list_schedule(model, alloc, 4);
  EXPECT_TRUE(JsonChecker::valid(chrome_trace_json(schedule)));
}

// Regression: node names with quotes, backslashes, newlines, and other
// control characters must be escaped in every Chrome-trace export path
// (the frontend lexer rejects such names, but the mdg API and span
// tracks accept arbitrary strings).
TEST(ChromeTrace, HostileNodeNamesStayValidJson) {
  const std::string hostile = "ev\"il\\node\nwith\tctl\x01" "chars";
  mdg::Mdg graph;
  const mdg::NodeId a = graph.add_synthetic(hostile, 0.1, 1.0);
  const mdg::NodeId b = graph.add_synthetic("tame", 0.1, 1.0);
  graph.add_synthetic_dependence(a, b, 1024);
  graph.finalize();

  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  const sched::Schedule schedule = sched::list_schedule(model, alloc, 2);
  const std::string json = chrome_trace_json(schedule);
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("ev\\\"il\\\\node\\nwith\\tctl\\u0001chars"),
            std::string::npos);
  // The raw (unescaped) name must not appear.
  EXPECT_EQ(json.find(hostile), std::string::npos);
}

TEST(ChromeTrace, HostileSpanTracksAndNamesStayValidJson) {
  obs::reset_all();
  obs::set_mode(obs::Mode::kLogical);
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.record("tr\"ack\\one", "sp\nan\x02", 0.0, 1.0);
  tracer.record("tame", "also \"quoted\"", 2.0, 1.0);
  const std::string json = chrome_trace_json(tracer);
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();

  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  EXPECT_NE(json.find("tr\\\"ack\\\\one"), std::string::npos);
  EXPECT_NE(json.find("sp\\nan\\u0002"), std::string::npos);
  // Track metadata names each virtual thread.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
}

TEST(ChromeTrace, MergedExportSeparatesProcesses) {
  sim::MachineConfig mc;
  mc.size = 2;
  mc.noise_sigma = 0.0;
  sim::MpmdProgram program(2);
  sim::GroupKernel work;
  work.node = 0;
  work.op = mdg::LoopOp::kSynthetic;
  work.cost_override = 0.25;
  work.group = {0, 1};
  program.streams[0].push_back(work);
  program.streams[1].push_back(work);
  sim::Simulator simulator(mc);
  simulator.run(program);

  obs::reset_all();
  obs::set_mode(obs::Mode::kLogical);
  obs::Tracer::global().record("compiler", "allocate", 1.0, 1.0);
  const std::string json = chrome_trace_json(simulator,
                                             obs::Tracer::global());
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();

  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  // Both processes named, sim events on pid 0, spans on pid 1.
  EXPECT_NE(json.find("\"simulator\""), std::string::npos);
  EXPECT_NE(json.find("\"observability\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"allocate\""), std::string::npos);
}

TEST(Charts, EmptyAndMismatchedSeriesRejected) {
  EXPECT_THROW(line_chart_svg("t", "x", "y", {}), Error);
  EXPECT_THROW(line_chart_svg("t", "x", "y", {{"bad", {1, 2}, {1}}}),
               Error);
  EXPECT_THROW(
      line_chart_svg("t", "x", "y", {{"neg", {-1, 2}, {1, 2}}}, true),
      Error);
}

}  // namespace
}  // namespace paradigm::viz
