// Tests for fault injection and fault-tolerant rescheduling: a rank
// crash mid-Strassen must not deadlock and must recover on the
// survivors with verifiable numerics; dropped messages must be retried
// (and exhaust cleanly into an abort, never a hang); duplicates must be
// suppressed; stragglers must slow the run without corrupting it; and
// fault-injected simulations must be bit-identical regardless of the
// simulator's rank scan order.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "core/recovery.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "sched/reschedule.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"

namespace paradigm {
namespace {

cost::MachineParams mirror_params(const sim::MachineConfig& mc) {
  cost::MachineParams mp;
  mp.t_ss = mc.send_startup;
  mp.t_ps = mc.send_per_byte;
  mp.t_sr = mc.recv_startup;
  mp.t_pr = mc.recv_per_byte;
  mp.t_n = 0.0;
  return mp;
}

cost::KernelCostTable mirror_table(const sim::MachineConfig& mc,
                                   const mdg::Mdg& graph) {
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop ||
        node.loop.op == mdg::LoopOp::kSynthetic) {
      continue;
    }
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (table.contains(key)) continue;
    const double seq =
        mc.sequential_seconds(key.op, key.rows, key.cols, key.inner);
    table.set(key,
              cost::AmdahlParams{mc.timing_for(key.op).serial_fraction,
                                 seq});
  }
  return table;
}

sim::MachineConfig quiet_machine(std::uint32_t size) {
  sim::MachineConfig mc;
  mc.size = size;
  mc.noise_sigma = 0.0;
  return mc;
}

/// Builds the PSA schedule + generated program for a graph on p ranks.
struct Pipeline {
  mdg::Mdg graph;
  sim::MachineConfig mc;
  cost::CostModel model;
  sched::PsaResult psa;
  codegen::GeneratedProgram generated;
  double fault_free = 0.0;

  Pipeline(mdg::Mdg g, std::uint32_t p)
      : graph(std::move(g)),
        mc(quiet_machine(p)),
        model(graph, mirror_params(mc), mirror_table(mc, graph)),
        psa(sched::prioritized_schedule(
            model,
            solver::ConvexAllocator{}
                .allocate(model, static_cast<double>(p))
                .allocation,
            p)),
        generated(codegen::generate_mpmd(graph, psa.schedule)) {
    sim::Simulator clean(mc);
    fault_free = clean.run(generated.program).finish_time;
  }
};

TEST(Faults, CrashMidStrassenRecoversOnSurvivorsAndVerifies) {
  const std::size_t n = 32;
  const std::size_t h = n / 2;
  Pipeline pl(core::strassen_mdg(n), 8);

  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashFault{2, 0.45 * pl.fault_free});

  const core::FaultToleranceReport report = core::run_with_faults(
      pl.graph, pl.model, pl.psa.schedule, pl.mc, plan, pl.fault_free);

  ASSERT_TRUE(report.crashed);
  ASSERT_TRUE(report.faulty.aborted);
  ASSERT_EQ(report.faulty.failed_ranks, std::vector<std::uint32_t>{2u});
  ASSERT_TRUE(report.recovered) << report.summary();

  // The residual re-ran on a power-of-two subset of the 7 survivors.
  EXPECT_EQ(report.reschedule->recovery_p, 4u);
  for (const auto& [node, ranks] : report.reschedule->recovery_groups) {
    for (const std::uint32_t r : ranks) EXPECT_NE(r, 2u);
  }
  EXPECT_GT(report.degradation.rerun_nodes, 0u);
  EXPECT_GT(report.recovery.finish_time, report.faulty.finish_time);

  // Numerics still verify, assembled from each output's residence.
  const auto ref = core::strassen_reference(n);
  const sim::Simulator& s = *report.simulator;
  EXPECT_LT(s.assemble_array("C11", h, h, report.array_ranks("C11"))
                .max_abs_diff(ref.c11),
            1e-10);
  EXPECT_LT(s.assemble_array("C12", h, h, report.array_ranks("C12"))
                .max_abs_diff(ref.c12),
            1e-10);
  EXPECT_LT(s.assemble_array("C21", h, h, report.array_ranks("C21"))
                .max_abs_diff(ref.c21),
            1e-10);
  EXPECT_LT(s.assemble_array("C22", h, h, report.array_ranks("C22"))
                .max_abs_diff(ref.c22),
            1e-10);

  // Degradation accounting is consistent.
  EXPECT_DOUBLE_EQ(report.degradation.fault_free_makespan, pl.fault_free);
  EXPECT_GT(report.degradation.overhead_factor, 1.0);
  EXPECT_EQ(report.degradation.failed_ranks, 1u);
}

TEST(Faults, CrashOfEveryRankInTurnNeverDeadlocks) {
  const std::size_t n = 16;
  Pipeline pl(core::complex_matmul_mdg(n), 8);
  const auto ref = core::complex_matmul_reference(n);
  for (std::uint32_t victim = 0; victim < 8; ++victim) {
    sim::FaultPlan plan;
    plan.crashes.push_back(sim::CrashFault{victim, 0.5 * pl.fault_free});
    const core::FaultToleranceReport report = core::run_with_faults(
        pl.graph, pl.model, pl.psa.schedule, pl.mc, plan, pl.fault_free);
    if (!report.crashed) continue;  // victim was already done at t_crash
    ASSERT_TRUE(report.recovered)
        << "victim " << victim << ": " << report.summary();
    const sim::Simulator& s = *report.simulator;
    EXPECT_LT(s.assemble_array("Cr", n, n, report.array_ranks("Cr"))
                  .max_abs_diff(ref.cr),
              1e-11)
        << "victim " << victim;
    EXPECT_LT(s.assemble_array("Ci", n, n, report.array_ranks("Ci"))
                  .max_abs_diff(ref.ci),
              1e-11)
        << "victim " << victim;
  }
}

TEST(Faults, DroppedMessagesAreRetriedAndTheRunCompletes) {
  const std::size_t n = 16;
  Pipeline pl(core::complex_matmul_mdg(n), 8);
  ASSERT_GT(pl.generated.planned_messages, 0u);

  sim::FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 0.3;
  plan.max_retries = 16;  // enough budget that nothing is abandoned

  sim::Simulator simulator(pl.mc);
  const sim::SimResult result = simulator.run(pl.generated.program, plan);
  EXPECT_FALSE(result.aborted);
  EXPECT_GT(result.retransmissions, 0u);
  EXPECT_EQ(result.lost_messages, 0u);
  EXPECT_EQ(result.messages, pl.generated.planned_messages);
  // Backoff + retransmission wire time push the finish time out.
  EXPECT_GT(result.finish_time, pl.fault_free);

  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-11);
}

TEST(Faults, ExhaustedRetriesAbortCleanlyInsteadOfHanging) {
  Pipeline pl(core::complex_matmul_mdg(16), 8);
  ASSERT_GT(pl.generated.planned_messages, 0u);

  sim::FaultPlan plan;
  plan.drop_probability = 1.0;  // every attempt lost
  plan.max_retries = 2;
  plan.recv_timeout = 0.05;

  sim::Simulator simulator(pl.mc);
  const sim::SimResult result = simulator.run(pl.generated.program, plan);
  EXPECT_TRUE(result.aborted);
  EXPECT_TRUE(result.failed_ranks.empty());
  EXPECT_FALSE(result.timed_out_ranks.empty());
  EXPECT_GT(result.lost_messages, 0u);
  bool saw_timeout = false;
  for (const auto& e : result.fault_events) {
    if (e.kind == sim::FaultKind::kTimeout) saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(Faults, DuplicatedDeliveriesAreSuppressed) {
  const std::size_t n = 16;
  Pipeline pl(core::complex_matmul_mdg(n), 8);
  ASSERT_GT(pl.generated.planned_messages, 0u);

  sim::FaultPlan plan;
  plan.duplicate_probability = 1.0;  // every delivery arrives twice

  sim::Simulator simulator(pl.mc);
  const sim::SimResult result = simulator.run(pl.generated.program, plan);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.messages, pl.generated.planned_messages);
  EXPECT_EQ(result.duplicates_suppressed, pl.generated.planned_messages);

  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-11);
}

TEST(Faults, StragglersSlowTheRunWithoutCorruptingIt) {
  const std::size_t n = 16;
  Pipeline pl(core::complex_matmul_mdg(n), 8);

  sim::FaultPlan plan;
  plan.slowdown_probability = 0.5;
  plan.slowdown_factor = 4.0;

  sim::Simulator simulator(pl.mc);
  const sim::SimResult result = simulator.run(pl.generated.program, plan);
  EXPECT_FALSE(result.aborted);
  EXPECT_GT(result.finish_time, pl.fault_free);
  bool saw_slowdown = false;
  for (const auto& e : result.fault_events) {
    if (e.kind == sim::FaultKind::kSlowdown) saw_slowdown = true;
  }
  EXPECT_TRUE(saw_slowdown);
  const auto ref = core::complex_matmul_reference(n);
  EXPECT_LT(simulator.assemble_array("Cr", n, n).max_abs_diff(ref.cr),
            1e-11);
}

TEST(Faults, FaultFreePlanMatchesPlainRunExactly) {
  // A fault plan that can inject nothing must not perturb the
  // simulated clocks or message accounting of the legacy path.
  Pipeline pl(core::complex_matmul_mdg(16), 8);
  sim::Simulator plain(pl.mc);
  const sim::SimResult a = plain.run(pl.generated.program);
  sim::Simulator faulty(pl.mc);
  const sim::SimResult b = faulty.run(pl.generated.program, sim::FaultPlan{});
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.rank_clock, b.rank_clock);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_FALSE(b.aborted);
  EXPECT_TRUE(b.fault_events.empty());
}

TEST(Faults, SimResultIsBitIdenticalAcrossScanOrders) {
  // Identical (seed, config, program) with faults AND noise enabled
  // must produce a bit-identical SimResult no matter how the progress
  // loop scans the ranks.
  const std::uint32_t p = 8;
  mdg::Mdg graph = core::strassen_mdg(32);
  sim::MachineConfig mc = quiet_machine(p);
  mc.noise_sigma = 0.02;
  mc.noise_seed = 0x1994;
  const cost::CostModel model(graph, mirror_params(mc),
                              mirror_table(mc, graph));
  const auto alloc =
      solver::ConvexAllocator{}.allocate(model, static_cast<double>(p));
  const auto psa = sched::prioritized_schedule(model, alloc.allocation, p);
  const auto generated = codegen::generate_mpmd(graph, psa.schedule);

  sim::FaultPlan plan;
  plan.seed = 0xfa17;
  plan.crashes.push_back(sim::CrashFault{1, 0.02});
  plan.drop_probability = 0.1;
  plan.duplicate_probability = 0.1;
  plan.slowdown_probability = 0.1;
  plan.max_retries = 12;

  std::vector<std::uint32_t> forward(p), reverse(p), shuffled(p);
  std::iota(forward.begin(), forward.end(), 0u);
  reverse = forward;
  std::reverse(reverse.begin(), reverse.end());
  shuffled = {3, 0, 6, 1, 7, 4, 2, 5};

  std::vector<sim::SimResult> results;
  for (const auto& order : {forward, reverse, shuffled}) {
    sim::Simulator simulator(mc);
    simulator.set_scan_order(order);
    results.push_back(simulator.run(generated.program, plan));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_TRUE(results[0].aborted);  // the crash really happened
}

TEST(Faults, DeterministicDrawsAreScanOrderFree) {
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.drop_probability = 0.5;
  plan.duplicate_probability = 0.5;
  plan.slowdown_probability = 0.5;
  // Pure functions of their arguments: repeated evaluation agrees.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.drop_message(1, 2, 77, 0), plan.drop_message(1, 2, 77, 0));
    EXPECT_EQ(plan.duplicate_message(3, 4, 5), plan.duplicate_message(3, 4, 5));
    EXPECT_EQ(plan.slowdown(6, 7), plan.slowdown(6, 7));
  }
  // And distinct identities give independent draws: over many tags both
  // outcomes occur.
  int drops = 0;
  for (std::uint64_t tag = 0; tag < 64; ++tag) {
    if (plan.drop_message(0, 1, tag, 0)) ++drops;
  }
  EXPECT_GT(drops, 8);
  EXPECT_LT(drops, 56);
}

TEST(Faults, RescheduleSalvagesOnlyDataHeldBySurvivors) {
  // Build a tiny pipeline, crash a rank, and check the salvage rule:
  // completed nodes whose output group intersects the failed rank are
  // re-run, completed nodes fully on survivors are salvaged.
  Pipeline pl(core::strassen_mdg(32), 8);
  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashFault{0, 0.5 * pl.fault_free});

  sim::Simulator simulator(pl.mc);
  const sim::SimResult faulty = simulator.run(pl.generated.program, plan);
  if (!faulty.aborted) GTEST_SKIP() << "rank 0 finished before the crash";

  sched::RecoveryInput input;
  input.failed_ranks = faulty.failed_ranks;
  input.completed_nodes = faulty.completed_nodes;
  input.machine_size = pl.mc.size;
  const sched::RecoverySchedule rs =
      sched::reschedule_after_faults(pl.model, pl.psa.schedule, input);

  std::set<std::uint32_t> completed(faulty.completed_nodes.begin(),
                                    faulty.completed_nodes.end());
  for (const mdg::NodeId id : rs.salvaged) {
    EXPECT_TRUE(completed.count(static_cast<std::uint32_t>(id)));
    const auto& node = pl.graph.node(id);
    if (node.loop.output.empty()) continue;
    for (const std::uint32_t r : pl.psa.schedule.placement(id).ranks) {
      EXPECT_NE(r, 0u) << "salvaged node " << node.name
                       << " held data on the failed rank";
    }
  }
  for (const auto& [orig, rid] : rs.residual_of) {
    EXPECT_EQ(rs.salvaged.count(orig), 0u);
  }
  // Validate the residual schedule against its own cost model.
  rs.psa->schedule.validate(*rs.residual_model);
}

}  // namespace
}  // namespace paradigm
