// Tests for the service durability layer (DESIGN §12): RunMemo digest
// round-trips, journal lifecycle records, exactly-once memoization,
// snapshot write/load, and recovery wiring through Service::run.
#include "svc/persist.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/vfs.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

namespace fs = std::filesystem;

ServiceConfig fast_config() {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 40;
  config.pipeline.solver.continuation_rounds = 2;
  config.default_deadline = 200000;
  return config;
}

JobSpec quick_job(std::string id, std::uint64_t arrival = 0) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.graph = GraphKind::kRandom;
  spec.seed = 7;
  spec.nodes = 8;
  spec.processors = 8;
  spec.arrival = arrival;
  return spec;
}

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("persist_test_" + std::string(
                                  ::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  PersistConfig config(bool recover = false) const {
    PersistConfig pc;
    pc.dir = dir_.string();
    pc.recover = recover;
    return pc;
  }

  fs::path dir_;
};

// ---- RunMemo digest ---------------------------------------------------------

TEST(RunMemo, EncodeDecodeRoundTripsExactly) {
  core::RunMemo memo;
  memo.failed = true;
  memo.cancelled = true;
  memo.reason = CancelReason::kWatchdog;
  memo.level = degrade::DegradationLevel::kAreaProportional;
  memo.phi = 0.1 + 0.2;  // Not exactly representable: hexfloat must hold.
  memo.mpmd_simulated = 2.4716903e-06;
  memo.ticks = 987654321u;
  memo.detail = "stall at solver/rung1: x=3 (50% done)\twith tab";
  EXPECT_EQ(core::RunMemo::decode(memo.encode()), memo);
}

TEST(RunMemo, DefaultAndEdgeValuesRoundTrip) {
  core::RunMemo memo;
  EXPECT_EQ(core::RunMemo::decode(memo.encode()), memo);
  memo.phi = -0.0;
  memo.mpmd_simulated = 1e-308;  // Denormal-adjacent magnitude.
  memo.detail = "percent % equals = spaces   end";
  const core::RunMemo back = core::RunMemo::decode(memo.encode());
  EXPECT_EQ(back, memo);
  EXPECT_EQ(std::signbit(back.phi), std::signbit(memo.phi));
}

TEST(RunMemo, DecodeRejectsMalformed) {
  EXPECT_THROW(core::RunMemo::decode("failed=0 nonsense"), Error);
  EXPECT_THROW(core::RunMemo::decode("unknownkey=1 detail="), Error);
  EXPECT_THROW(core::RunMemo::decode("failed=0"), Error);  // no detail
}

TEST(SvcJob, WriteJobLineRoundTrips) {
  JobSpec spec;
  spec.id = "j9";
  spec.graph = GraphKind::kPathological;
  spec.seed = 42;
  spec.nodes = 24;
  spec.processors = 32;
  spec.arrival = 17;
  spec.deadline = 5000;
  spec.stall_limit = 9;
  spec.job_class = "fuzz";
  spec.retries = 2;
  const JobSpec back = parse_job_line(write_job_line(spec));
  EXPECT_EQ(back.id, spec.id);
  EXPECT_EQ(back.graph, spec.graph);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.nodes, spec.nodes);
  EXPECT_EQ(back.processors, spec.processors);
  EXPECT_EQ(back.arrival, spec.arrival);
  EXPECT_EQ(back.deadline, spec.deadline);
  EXPECT_EQ(back.stall_limit, spec.stall_limit);
  EXPECT_EQ(back.job_class, spec.job_class);
  EXPECT_EQ(back.retries, spec.retries);

  // The default retry sentinel (-1) has no line syntax; it must come
  // back as the default, not as a parse error.
  spec.retries = -1;
  EXPECT_EQ(parse_job_line(write_job_line(spec)).retries, -1);
}

// ---- Journal lifecycle ------------------------------------------------------

TEST_F(PersistTest, FreshStartThenRecoverReplaysInputs) {
  {
    Persistence persist(config());
    const std::vector<JobSpec> jobs = {quick_job("a"), quick_job("b", 10)};
    const DrainSpec drain{500, 100};
    persist.begin_run(jobs, &drain);
  }
  Persistence recovered(config(/*recover=*/true));
  ASSERT_EQ(recovered.recovered_jobs().size(), 2u);
  EXPECT_EQ(recovered.recovered_jobs()[0].id, "a");
  EXPECT_EQ(recovered.recovered_jobs()[1].id, "b");
  EXPECT_EQ(recovered.recovered_jobs()[1].arrival, 10u);
  ASSERT_TRUE(recovered.recovered_drain().has_value());
  EXPECT_EQ(recovered.recovered_drain()->at, 500u);
  EXPECT_EQ(recovered.recovered_drain()->grace, 100u);
  EXPECT_EQ(recovered.stats().journal_records, 3u);
}

TEST_F(PersistTest, ExistingJournalWithoutRecoverIsUsageError) {
  { Persistence persist(config()); }
  EXPECT_THROW(Persistence{config()}, UsageError);
}

TEST_F(PersistTest, RecoverWithoutJournalIsUsageError) {
  EXPECT_THROW(Persistence{config(/*recover=*/true)}, UsageError);
}

TEST_F(PersistTest, BeginRunRejectsDivergingSubmissions) {
  {
    Persistence persist(config());
    persist.begin_run({quick_job("a")}, nullptr);
  }
  Persistence recovered(config(/*recover=*/true));
  EXPECT_THROW(recovered.begin_run({quick_job("different")}, nullptr),
               Error);
  EXPECT_THROW(recovered.begin_run({}, nullptr), Error);
}

TEST_F(PersistTest, ExecDigestsMemoizeAcrossRecovery) {
  core::RunMemo memo;
  memo.phi = 1.25;
  memo.mpmd_simulated = 0.5;
  memo.ticks = 77;
  {
    Persistence persist(config());
    persist.begin_run({quick_job("a")}, nullptr);
    EXPECT_EQ(persist.find_memo(0, 1), nullptr);
    persist.journal_exec(0, 1, memo);
    // Same-session duplicate is an exactly-once violation.
    EXPECT_THROW(persist.journal_exec(0, 1, memo), Error);
  }
  Persistence recovered(config(/*recover=*/true));
  EXPECT_EQ(recovered.stats().exec_memos, 1u);
  const core::RunMemo* found = recovered.find_memo(0, 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, memo);
  EXPECT_EQ(recovered.find_memo(0, 2), nullptr);
  EXPECT_EQ(recovered.find_memo(1, 1), nullptr);
  EXPECT_EQ(recovered.stats().memo_hits, 1u);
}

TEST_F(PersistTest, RecoveredOutcomesAreNotReappended) {
  JobResult result;
  result.id = "a";
  result.attempt = 1;
  {
    Persistence persist(config());
    persist.begin_run({quick_job("a")}, nullptr);
    persist.journal_outcome(result);
    persist.journal_outcome(result);  // Same key: no second record.
    EXPECT_EQ(persist.stats().appended_records, 2u);  // job + outcome.
  }
  Persistence recovered(config(/*recover=*/true));
  EXPECT_EQ(recovered.stats().journal_records, 2u);
  recovered.begin_run({quick_job("a")}, nullptr);
  recovered.journal_outcome(result);  // Already durable: skipped.
  EXPECT_EQ(recovered.stats().appended_records, 0u);
}

// ---- Snapshots --------------------------------------------------------------

TEST_F(PersistTest, SnapshotStandsInForCoveredJournalPrefix) {
  core::RunMemo memo;
  memo.ticks = 5;
  {
    PersistConfig pc = config();
    pc.snapshot_every = 2;
    Persistence persist(pc);
    persist.begin_run({quick_job("a"), quick_job("b")}, nullptr);
    persist.journal_exec(0, 1, memo);
    persist.journal_exec(1, 1, memo);  // Triggers snapshot-4.snap.
    EXPECT_EQ(persist.stats().snapshots_written, 1u);
  }
  ASSERT_TRUE(fs::exists(dir_ / "snapshot-4.snap"));

  // Wreck the journal completely: the snapshot alone must carry the
  // covered state through recovery.
  {
    std::ofstream out(dir_ / "journal.wal",
                      std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(static_cast<std::streamoff>(wal::kHeaderBytes) + 2);
    out.put('\xFF');
  }
  Persistence recovered(config(/*recover=*/true));
  EXPECT_EQ(recovered.stats().snapshot_loaded, 4);
  EXPECT_EQ(recovered.recovered_jobs().size(), 2u);
  EXPECT_NE(recovered.find_memo(0, 1), nullptr);
  EXPECT_NE(recovered.find_memo(1, 1), nullptr);
}

TEST_F(PersistTest, IncompleteSnapshotIsIgnored) {
  core::RunMemo memo;
  {
    PersistConfig pc = config();
    pc.snapshot_every = 1;
    Persistence persist(pc);
    persist.begin_run({quick_job("a")}, nullptr);
    persist.journal_exec(0, 1, memo);
    EXPECT_EQ(persist.stats().snapshots_written, 1u);
  }
  // Truncate the snapshot's `end` record away: it must be skipped and
  // plain journal replay must still recover everything.
  const fs::path snap = dir_ / "snapshot-2.snap";
  ASSERT_TRUE(fs::exists(snap));
  fs::resize_file(snap, fs::file_size(snap) - 4);

  Persistence recovered(config(/*recover=*/true));
  EXPECT_EQ(recovered.stats().snapshot_loaded, -1);
  EXPECT_EQ(recovered.recovered_jobs().size(), 1u);
  EXPECT_NE(recovered.find_memo(0, 1), nullptr);
}

// ---- Service integration ----------------------------------------------------

TEST_F(PersistTest, JournalingDoesNotChangeTheLedger) {
  Service plain(fast_config());
  plain.submit(quick_job("a"));
  plain.submit(quick_job("b", 5));
  const ServiceReport baseline = plain.run();

  Persistence persist(config());
  Service durable(fast_config());
  durable.submit(quick_job("a"));
  durable.submit(quick_job("b", 5));
  durable.attach_persistence(&persist);
  const ServiceReport journaled = durable.run();

  EXPECT_EQ(journaled.ledger(), baseline.ledger());
  EXPECT_EQ(journaled.pipeline_runs, baseline.pipeline_runs);
  EXPECT_EQ(persist.stats().memo_hits, 0u);
  EXPECT_GT(persist.stats().appended_records, 0u);
}

TEST_F(PersistTest, CrashMidRunRecoversToIdenticalLedger) {
  Service plain(fast_config());
  plain.submit(quick_job("a"));
  plain.submit(quick_job("b", 5));
  plain.submit(quick_job("c", 9));
  const ServiceReport baseline = plain.run();

  wal::CrashPoint crash;
  crash.arm(5);  // 3 job records + start + exec, then boom.
  {
    PersistConfig pc = config();
    pc.crash = &crash;
    Persistence persist(pc);
    Service durable(fast_config());
    durable.submit(quick_job("a"));
    durable.submit(quick_job("b", 5));
    durable.submit(quick_job("c", 9));
    durable.attach_persistence(&persist);
    EXPECT_THROW(durable.run(), wal::CrashInjected);
  }

  Persistence persist(config(/*recover=*/true));
  Service recovered(fast_config());
  for (const JobSpec& spec : persist.recovered_jobs()) {
    recovered.submit(spec);
  }
  recovered.attach_persistence(&persist);
  const ServiceReport report = recovered.run();

  EXPECT_EQ(report.ledger(), baseline.ledger());
  // Exactly-once: every attempt ran in the pair of processes exactly
  // once or was re-served from its durable digest.
  EXPECT_EQ(report.pipeline_runs + persist.stats().memo_hits,
            baseline.pipeline_runs);
}

// ---- Storage-failure contract (DESIGN §14) ----------------------------------

TEST_F(PersistTest, QuarantinedJournalRefusesFurtherAppends) {
  vfs::FaultPlan plan;
  plan.fail_append_after = 1;  // Header lands; the first record cannot.
  plan.short_write_fraction = 0.0;
  vfs::FaultyVfs faulty(vfs::Vfs::real(), plan);
  PersistConfig pc = config();
  pc.fs = &faulty;
  Persistence persist(pc);
  const std::vector<JobSpec> jobs = {quick_job("a")};
  EXPECT_THROW(persist.begin_run(jobs, nullptr), vfs::StorageError);
  EXPECT_TRUE(persist.stats().quarantined);
  // A quarantined journal is poisoned for the rest of the process:
  // every further append attempt is a structured refusal, not a write.
  EXPECT_THROW(persist.begin_run(jobs, nullptr), Error);
  // finalize() on a quarantined journal is a no-op, not a crash — the
  // service's unwind path must be able to call it unconditionally.
  persist.finalize();
}

TEST_F(PersistTest, FinalizeIsTheClosingBatchBarrier) {
  const std::vector<JobSpec> jobs = {quick_job("a")};
  // kBatch: header sync at create, then nothing until finalize().
  {
    vfs::FaultyVfs recorder(vfs::Vfs::real());
    PersistConfig pc = config();
    pc.fs = &recorder;
    Persistence persist(pc);
    const std::size_t create_syncs = recorder.syncs();
    persist.begin_run(jobs, nullptr);
    EXPECT_EQ(recorder.syncs(), create_syncs);  // Submits are not synced.
    persist.finalize();
    EXPECT_EQ(recorder.syncs(), create_syncs + 1);
    EXPECT_EQ(persist.stats().journal_syncs, 1u);
  }
  fs::remove_all(dir_);
  fs::create_directories(dir_);
  // kNever: no sync anywhere, not even at create or finalize.
  {
    vfs::FaultyVfs recorder(vfs::Vfs::real());
    PersistConfig pc = config();
    pc.fs = &recorder;
    pc.sync_policy = wal::SyncPolicy::kNever;
    Persistence persist(pc);
    persist.begin_run(jobs, nullptr);
    persist.finalize();
    EXPECT_EQ(recorder.syncs(), 0u);
    EXPECT_EQ(persist.stats().journal_syncs, 0u);
  }
}

TEST_F(PersistTest, FreshJournalCreationIsDirectoryDurable) {
  // The journal's *name* must survive power loss too: a fresh create
  // under a syncing policy ends with a directory fsync.
  vfs::FaultyVfs recorder(vfs::Vfs::real());
  PersistConfig pc = config();
  pc.fs = &recorder;
  { Persistence persist(pc); }
  bool saw_dir_sync = false;
  for (const auto& op : recorder.log()) {
    if (op.kind == vfs::OpRecord::Kind::kSyncDir && op.path == pc.dir) {
      saw_dir_sync = true;
    }
  }
  EXPECT_TRUE(saw_dir_sync);
}

}  // namespace
}  // namespace paradigm::svc
