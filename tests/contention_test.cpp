// Tests for the optional receiver-NIC contention model.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace paradigm::sim {
namespace {

/// Many-to-one: `senders` ranks each send one block to rank 0.
MpmdProgram fan_in_program(std::uint32_t senders, std::size_t elems) {
  MpmdProgram program(senders + 1);
  for (std::uint32_t s = 0; s < senders; ++s) {
    const BlockRect rect{{s * elems, (s + 1) * elems}, {0, 1}};
    program.streams[s + 1].push_back(
        AllocBlock{"X" + std::to_string(s), rect});
    program.streams[s + 1].push_back(
        SendBlock{0, s + 1, "X" + std::to_string(s), rect});
    program.streams[0].push_back(AllocBlock{"Y" + std::to_string(s), rect});
    program.streams[0].push_back(
        RecvBlock{s + 1, s + 1, "Y" + std::to_string(s), rect});
  }
  return program;
}

TEST(Contention, DisabledByDefault) {
  MachineConfig mc;
  EXPECT_EQ(mc.nic_per_byte, 0.0);
}

TEST(Contention, ManyToOneSlowsDownWithNic) {
  const std::uint32_t senders = 8;
  const std::size_t elems = 4096;
  MachineConfig base;
  base.size = senders + 1;
  base.noise_sigma = 0.0;
  MachineConfig congested = base;
  congested.nic_per_byte = 100e-9;

  Simulator fast(base);
  Simulator slow(congested);
  const MpmdProgram program = fan_in_program(senders, elems);
  const double t_fast = fast.run(program).finish_time;
  const double t_slow = slow.run(program).finish_time;
  EXPECT_GT(t_slow, t_fast);
  // The serialized NIC adds at least (senders * bytes * nic) in the
  // limit of simultaneous arrivals; with staggered sends we still
  // expect a visible fraction of it.
  const double full_serial = senders * elems * 8.0 * 100e-9;
  EXPECT_GT(t_slow - t_fast, 0.1 * full_serial);
}

TEST(Contention, SingleMessageBarelyAffected) {
  MachineConfig base;
  base.size = 2;
  base.noise_sigma = 0.0;
  MachineConfig congested = base;
  congested.nic_per_byte = 100e-9;

  const MpmdProgram program = fan_in_program(1, 1024);
  Simulator fast(base);
  Simulator slow(congested);
  const double t_fast = fast.run(program).finish_time;
  const double t_slow = slow.run(program).finish_time;
  // One message pays exactly bytes * nic extra.
  EXPECT_NEAR(t_slow - t_fast, 1024 * 8.0 * 100e-9, 1e-12);
}

TEST(Contention, DataStillCorrect) {
  MachineConfig congested;
  congested.size = 5;
  congested.noise_sigma = 0.0;
  congested.nic_per_byte = 50e-9;
  Simulator simulator(congested);
  simulator.run(fan_in_program(4, 64));
  for (std::uint32_t s = 0; s < 4; ++s) {
    const BlockRect rect{{s * 64, (s + 1) * 64}, {0, 1}};
    // Payload was zero-filled; delivery must have happened.
    EXPECT_NO_THROW(
        simulator.memory(0).read("Y" + std::to_string(s), rect));
  }
}

}  // namespace
}  // namespace paradigm::sim
