// Unit tests for the deterministic observability layer: mode switching,
// counter/gauge/histogram semantics, histogram-merge algebra, registry
// reset and inactive-instrument skipping, canonical span ordering, and
// the exact byte format of the metrics-JSON / Prometheus exporters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace paradigm::obs {
namespace {

/// Every test runs from a clean enabled state and leaves obs off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_mode(Mode::kLogical);
  }
  void TearDown() override {
    set_mode(Mode::kOff);
    reset_all();
  }
};

TEST_F(ObsTest, ModeParsingAndPredicates) {
  EXPECT_EQ(parse_mode("off"), Mode::kOff);
  EXPECT_EQ(parse_mode("on"), Mode::kLogical);
  EXPECT_EQ(parse_mode("logical"), Mode::kLogical);
  EXPECT_EQ(parse_mode("wallclock"), Mode::kWallclock);
  EXPECT_THROW(parse_mode("bogus"), Error);

  set_mode(Mode::kOff);
  EXPECT_FALSE(enabled());
  EXPECT_FALSE(wallclock_enabled());
  set_mode(Mode::kLogical);
  EXPECT_TRUE(enabled());
  EXPECT_FALSE(wallclock_enabled());
  set_mode(Mode::kWallclock);
  EXPECT_TRUE(enabled());
  EXPECT_TRUE(wallclock_enabled());

  EXPECT_STREQ(to_string(Mode::kOff), "off");
  EXPECT_STREQ(to_string(Mode::kLogical), "logical");
  EXPECT_STREQ(to_string(Mode::kWallclock), "wallclock");
}

TEST_F(ObsTest, CounterRespectsMode) {
  Counter c;
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
  set_mode(Mode::kOff);
  c.add(100);  // gated off
  EXPECT_EQ(c.value(), 3u);
  c.add_unchecked(2);  // unconditional
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(c.active());
}

TEST_F(ObsTest, GaugeTracksLastValueAndActivity) {
  Gauge g;
  EXPECT_FALSE(g.active());
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  EXPECT_TRUE(g.active());
  set_mode(Mode::kOff);
  g.set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.reset();
  EXPECT_FALSE(g.active());
}

TEST_F(ObsTest, HistogramBucketBoundariesAreUpperInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0: v <= 1
  h.observe(1.0);    // bucket 0 (upper-inclusive)
  h.observe(1.0001); // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(101.0);  // +inf bucket
  const HistogramData d = h.snapshot();
  EXPECT_EQ(d.counts, (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(d.total(), 6u);
  h.reset();
  EXPECT_FALSE(h.active());
}

TEST_F(ObsTest, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
  EXPECT_THROW(Histogram({1.0, 1.0}), Error);
}

TEST_F(ObsTest, BoundHelpers) {
  EXPECT_EQ(exp_bounds(1.0, 10.0, 3),
            (std::vector<double>{1.0, 10.0, 100.0}));
  EXPECT_EQ(linear_bounds(0.5, 0.5, 3),
            (std::vector<double>{0.5, 1.0, 1.5}));
}

// Merge is bucket-wise integer addition, so it is associative and
// commutative: any merge tree over any partition of the observations
// (the shape a work-stealing pool would produce) yields the same state.
TEST_F(ObsTest, HistogramMergeIsAssociativeAndCommutative) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const auto observe_all = [&](const std::vector<double>& vs) {
    Histogram h(bounds);
    for (const double v : vs) h.observe(v);
    return h.snapshot();
  };
  const HistogramData a = observe_all({0.5, 1.5, 8.0});
  const HistogramData b = observe_all({2.0, 2.0, 3.0});
  const HistogramData c = observe_all({0.1, 5.0});

  EXPECT_EQ(merge(a, b), merge(b, a));
  EXPECT_EQ(merge(merge(a, b), c), merge(a, merge(b, c)));
  // Merging partitions == observing everything in one histogram.
  EXPECT_EQ(merge(merge(a, b), c),
            observe_all({0.5, 1.5, 8.0, 2.0, 2.0, 3.0, 0.1, 5.0}));
}

TEST_F(ObsTest, MergeRequiresIdenticalBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  EXPECT_THROW(merge(a.snapshot(), b.snapshot()), Error);
}

TEST_F(ObsTest, RegistryReturnsStableInstrumentsAndChecksBounds) {
  Registry& reg = Registry::global();
  Counter& c1 = reg.counter("test.counter");
  Counter& c2 = reg.counter("test.counter");
  EXPECT_EQ(&c1, &c2);

  const std::vector<double> bounds{1.0, 2.0};
  Histogram& h1 = reg.histogram("test.hist", bounds);
  Histogram& h2 = reg.histogram("test.hist", bounds);
  EXPECT_EQ(&h1, &h2);
  const std::vector<double> other{1.0, 3.0};
  EXPECT_THROW(reg.histogram("test.hist", other), Error);
}

TEST_F(ObsTest, SnapshotSkipsInactiveInstruments) {
  Registry& reg = Registry::global();
  reg.counter("test.zero");              // never incremented
  reg.gauge("test.unset");               // never set
  const std::vector<double> bounds{1.0};
  reg.histogram("test.empty", bounds);   // never observed
  reg.counter("test.used").add(1);

  const Registry::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_TRUE(snap.counters.contains("test.used"));
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());

  // reset() returns a used instrument to the inactive (skipped) state.
  reg.reset();
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST_F(ObsTest, TracerSortsSpansCanonically) {
  Tracer& tracer = Tracer::global();
  tracer.record("b", "later", 5.0, 1.0);
  tracer.record("a", "second", 2.0, 1.0);
  tracer.record("b", "early", 1.0, 1.0);
  tracer.record("a", "first", 1.0, 1.0);
  const std::vector<Span> spans = tracer.sorted_spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0], (Span{"a", "first", 1.0, 1.0}));
  EXPECT_EQ(spans[1], (Span{"a", "second", 2.0, 1.0}));
  EXPECT_EQ(spans[2], (Span{"b", "early", 1.0, 1.0}));
  EXPECT_EQ(spans[3], (Span{"b", "later", 5.0, 1.0}));

  set_mode(Mode::kOff);
  tracer.record("c", "dropped", 0.0, 0.0);
  EXPECT_EQ(tracer.size(), 4u);
}

TEST_F(ObsTest, PhaseSpanRecordsLogicalUnitInterval) {
  { const PhaseSpan span("track", "phase", 7.0); }
  const std::vector<Span> spans = Tracer::global().sorted_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{"track", "phase", 7.0, 1.0}));
}

TEST_F(ObsTest, PhaseSpanRecordsNothingWhenOff) {
  set_mode(Mode::kOff);
  { const PhaseSpan span("track", "phase", 0.0); }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST_F(ObsTest, MetricsJsonFormat) {
  Registry& reg = Registry::global();
  reg.counter("test.count").add(2);
  reg.gauge("test.gauge").set(1.5);
  const std::vector<double> bounds{1.0, 2.0};
  Histogram& h = reg.histogram("test.h", bounds);
  h.observe(0.5);
  h.observe(3.0);
  Tracer::global().record("t", "s", 0.0, 1.0);

  EXPECT_EQ(metrics_json(),
            "{\n"
            "  \"counters\": {\n"
            "    \"test.count\": 2\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"test.gauge\": 1.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"test.h\": {\n"
            "      \"bounds\": [1, 2],\n"
            "      \"counts\": [1, 0, 1],\n"
            "      \"total\": 2\n"
            "    }\n"
            "  },\n"
            "  \"spans\": 1\n"
            "}\n");
}

TEST_F(ObsTest, PrometheusTextFormat) {
  Registry& reg = Registry::global();
  reg.counter("test.count").add(2);
  const std::vector<double> bounds{1.0, 2.0};
  Histogram& h = reg.histogram("test.h", bounds);
  h.observe(0.5);
  h.observe(3.0);

  EXPECT_EQ(prometheus_text(),
            "# TYPE test_count counter\n"
            "test_count 2\n"
            "# TYPE test_h histogram\n"
            "test_h_bucket{le=\"1\"} 1\n"
            "test_h_bucket{le=\"2\"} 1\n"
            "test_h_bucket{le=\"+Inf\"} 2\n"
            "test_h_count 2\n");
}

TEST_F(ObsTest, JsonHelpersMatchSupportJson) {
  const std::string hostile = "a\"b\\c\nd\x01" "e";
  EXPECT_EQ(escape_json(hostile), Json::string(hostile).dump(-1));
  for (const double v : {1.5, 0.1, 1e-9, 123456789.0, -2.25}) {
    EXPECT_EQ(format_double(v), Json::number(v).dump(-1));
  }
}

}  // namespace
}  // namespace paradigm::obs
