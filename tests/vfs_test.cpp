// Unit tests for the storage seam (support/vfs.hpp, DESIGN §14): the
// real POSIX backend's error surface, the seeded FaultyVfs injections
// (sticky and transient, short writes, capacity devices, failed
// fsync/rename), the op log, and the legal-post-power-loss-state
// materializer's strict-POSIX semantics (file fsync pins data only;
// metadata commits in order at the directory fsync).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "support/vfs.hpp"

namespace paradigm::vfs {
namespace {

namespace fs = std::filesystem;

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("vfs_test_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string path(const std::string& name) const {
    return (root_ / name).string();
  }

  std::string slurp(const std::string& p) const {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  fs::path root_;
};

// ---- RealVfs ---------------------------------------------------------

TEST_F(VfsTest, RealRoundTrip) {
  Vfs& v = Vfs::real();
  {
    auto f = v.create(path("a.bin"));
    f->append("hello ");
    f->append("world");
    f->sync();
    EXPECT_EQ(f->size(), 11u);
    f->truncate(5);
    EXPECT_EQ(f->size(), 5u);
  }
  EXPECT_EQ(v.read_all(path("a.bin")), "hello");
  EXPECT_EQ(v.file_size(path("a.bin")), 5);
  EXPECT_EQ(v.file_size(path("missing.bin")), -1);
  v.rename(path("a.bin"), path("b.bin"));
  EXPECT_EQ(v.file_size(path("a.bin")), -1);
  EXPECT_EQ(v.read_all(path("b.bin")), "hello");
  v.remove(path("b.bin"));
  v.remove(path("b.bin"));  // Missing: not an error.
  EXPECT_EQ(v.file_size(path("b.bin")), -1);
  v.sync_dir(root_.string());
}

TEST_F(VfsTest, RealOpenAppendContinues) {
  Vfs& v = Vfs::real();
  { v.create(path("a.bin"))->append("one"); }
  { v.open_append(path("a.bin"))->append("two"); }
  EXPECT_EQ(v.read_all(path("a.bin")), "onetwo");
}

TEST_F(VfsTest, RealErrorsAreStructured) {
  Vfs& v = Vfs::real();
  EXPECT_THROW(v.read_all(path("missing.bin")), StorageError);
  EXPECT_THROW(v.open_append(path("missing.bin")), StorageError);
  try {
    v.rename(path("missing.bin"), path("other.bin"));
    FAIL() << "rename of a missing file must throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kRenameFailure);
    EXPECT_EQ(e.op(), "rename");
    EXPECT_NE(std::string(e.what()).find("missing.bin"), std::string::npos);
  }
  EXPECT_THROW(v.list_dir(path("no-such-dir")), StorageError);
}

// ---- FaultyVfs injections -------------------------------------------

TEST_F(VfsTest, StickyEnospcAfterTrigger) {
  FaultPlan plan;
  plan.fail_append_after = 2;
  plan.append_fault = FaultKind::kEnospc;
  plan.short_write_fraction = 0.0;
  FaultyVfs v(Vfs::real(), plan);
  auto f = v.create(path("j.bin"));
  f->append("aa");
  f->append("bb");
  for (int i = 0; i < 3; ++i) {
    try {
      f->append("cc");
      FAIL() << "append " << i << " past the trigger must fail";
    } catch (const StorageError& e) {
      EXPECT_EQ(e.kind(), FaultKind::kEnospc);
    }
  }
  // Nothing from the failing appends reached the file.
  EXPECT_EQ(slurp(path("j.bin")), "aabb");
}

TEST_F(VfsTest, TransientEioFailsExactlyOnce) {
  FaultPlan plan;
  plan.fail_append_after = 1;
  plan.append_fault = FaultKind::kEio;
  plan.append_fail_count = 1;
  plan.short_write_fraction = 0.0;
  FaultyVfs v(Vfs::real(), plan);
  auto f = v.create(path("j.bin"));
  f->append("aa");
  EXPECT_THROW(f->append("bb"), StorageError);
  f->append("bb");  // The retry rides through.
  EXPECT_EQ(slurp(path("j.bin")), "aabb");
}

TEST_F(VfsTest, ShortWriteLeavesPrefix) {
  FaultPlan plan;
  plan.fail_append_after = 0;
  plan.append_fault = FaultKind::kShortWrite;
  plan.short_write_fraction = 0.5;
  FaultyVfs v(Vfs::real(), plan);
  auto f = v.create(path("j.bin"));
  try {
    f->append("0123456789");
    FAIL() << "short write must throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kShortWrite);
  }
  EXPECT_EQ(slurp(path("j.bin")), "01234");  // Torn prefix on disk.
}

TEST_F(VfsTest, CapacityDeviceTearsAtTheBudget) {
  FaultPlan plan;
  plan.capacity_bytes = 7;
  FaultyVfs v(Vfs::real(), plan);
  auto f = v.create(path("j.bin"));
  f->append("0123");  // 4 of 7.
  try {
    f->append("4567");  // Would cross: writes 3, fails.
    FAIL() << "capacity crossing must throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kShortWrite);
  }
  EXPECT_EQ(slurp(path("j.bin")), "0123456");
  // The device stays full: even one byte now fails cleanly.
  try {
    f->append("8");
    FAIL() << "full device must reject";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kEnospc);
  }
}

TEST_F(VfsTest, SyncAndRenameFaults) {
  FaultPlan plan;
  plan.fail_sync_after = 1;
  plan.sync_fail_count = 1;
  plan.fail_rename_after = 0;
  FaultyVfs v(Vfs::real(), plan);
  auto f = v.create(path("j.bin"));
  f->append("aa");
  f->sync();                              // Sync 0 passes.
  EXPECT_THROW(f->sync(), StorageError);  // Sync 1 injected.
  f->sync();                              // Transient: sync 2 passes.
  EXPECT_THROW(v.rename(path("j.bin"), path("k.bin")), StorageError);
  // The failed rename did not happen.
  EXPECT_EQ(v.file_size(path("j.bin")), 2);
  EXPECT_EQ(v.file_size(path("k.bin")), -1);
}

TEST_F(VfsTest, OpLogRecordsStateChanges) {
  FaultyVfs v(Vfs::real());
  {
    auto f = v.create(path("j.bin"));
    f->append("aa");
    f->sync();
  }
  v.sync_dir(root_.string());
  v.rename(path("j.bin"), path("k.bin"));
  v.remove(path("k.bin"));
  const auto& log = v.log();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0].kind, OpRecord::Kind::kCreate);
  EXPECT_EQ(log[1].kind, OpRecord::Kind::kAppend);
  EXPECT_EQ(log[1].bytes, "aa");
  EXPECT_EQ(log[2].kind, OpRecord::Kind::kSync);
  EXPECT_EQ(log[3].kind, OpRecord::Kind::kSyncDir);
  EXPECT_EQ(log[4].kind, OpRecord::Kind::kRename);
  EXPECT_EQ(log[4].path2, path("k.bin"));
  EXPECT_EQ(log[5].kind, OpRecord::Kind::kRemove);
}

// ---- Crash-state materialization ------------------------------------

/// Drives a FaultyVfs, then materializes states from its log. Returns
/// the surviving content of `name` in the materialized root ("" when
/// the file does not exist there).
class MaterializeTest : public VfsTest {
 protected:
  std::string dst() const { return (root_ / "crashed").string(); }

  std::string surviving(const std::string& name) const {
    const fs::path p = fs::path(dst()) / name;
    if (!fs::exists(p)) return "<missing>";
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
};

TEST_F(MaterializeTest, SyncedOnlyDropsUnsyncedTail) {
  FaultyVfs v(Vfs::real());
  const std::string live = (root_ / "live").string();
  fs::create_directories(live);
  {
    auto f = v.create(live + "/j.bin");
    f->append("durable");
    f->sync();
    f->append("-volatile");
  }
  v.sync_dir(live);  // Commits the create; the tail stays unsynced.

  const auto& log = v.log();
  const CrashState keep = materialize_crash_state(
      log, log.size(), TailLoss::kKeepAll, 1, live, dst() + "/keep");
  const CrashState synced = materialize_crash_state(
      log, log.size(), TailLoss::kSyncedOnly, 1, live, dst() + "/synced");
  EXPECT_NE(keep.digest, synced.digest);

  std::ifstream keep_in(dst() + "/keep/j.bin", std::ios::binary);
  std::string keep_bytes((std::istreambuf_iterator<char>(keep_in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(keep_bytes, "durable-volatile");
  std::ifstream sync_in(dst() + "/synced/j.bin", std::ios::binary);
  std::string sync_bytes((std::istreambuf_iterator<char>(sync_in)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(sync_bytes, "durable");
}

TEST_F(MaterializeTest, TornCutsInsideTheUnsyncedWindow) {
  FaultyVfs v(Vfs::real());
  const std::string live = (root_ / "live").string();
  fs::create_directories(live);
  {
    auto f = v.create(live + "/j.bin");
    f->append("abcd");
    f->sync();
    f->append("efgh");
  }
  v.sync_dir(live);
  const auto& log = v.log();
  std::set<std::size_t> lengths;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    materialize_crash_state(log, log.size(), TailLoss::kTorn, seed, live,
                            dst());
    const std::string bytes = surviving("j.bin");
    ASSERT_EQ(bytes.rfind("abcd", 0), 0u)
        << "synced prefix must always survive, got '" << bytes << "'";
    ASSERT_LE(bytes.size(), 8u);
    lengths.insert(bytes.size());
  }
  // Seeded cuts must actually explore the window, not collapse to one
  // point.
  EXPECT_GT(lengths.size(), 1u);
}

TEST_F(MaterializeTest, UncommittedRenameMayNotSurvive) {
  FaultyVfs v(Vfs::real());
  const std::string live = (root_ / "live").string();
  fs::create_directories(live);
  {
    auto f = v.create(live + "/snap.tmp");
    f->append("snapshot");
    f->sync();
  }
  v.sync_dir(live);  // Create committed.
  v.rename(live + "/snap.tmp", live + "/snap.final");
  // No directory sync after the rename: both outcomes are legal.
  const auto& log = v.log();
  bool saw_old = false;
  bool saw_new = false;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    materialize_crash_state(log, log.size(), TailLoss::kKeepAll, seed, live,
                            dst());
    const std::string at_old = surviving("snap.tmp");
    const std::string at_new = surviving("snap.final");
    if (at_old == "snapshot") {
      EXPECT_EQ(at_new, "<missing>");
      saw_old = true;
    } else {
      EXPECT_EQ(at_new, "snapshot");
      EXPECT_EQ(at_old, "<missing>");
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_old) << "some seed must keep the rename uncommitted";
  EXPECT_TRUE(saw_new) << "some seed must commit the rename";
}

TEST_F(MaterializeTest, UncommittedCreateMayVanishEntirely) {
  FaultyVfs v(Vfs::real());
  const std::string live = (root_ / "live").string();
  fs::create_directories(live);
  { v.create(live + "/j.bin")->append("data"); }
  // No sync_dir at all: the file's very existence is uncommitted.
  const auto& log = v.log();
  bool vanished = false;
  bool survived = false;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    materialize_crash_state(log, log.size(), TailLoss::kKeepAll, seed, live,
                            dst());
    if (surviving("j.bin") == "<missing>") vanished = true;
    else survived = true;
  }
  EXPECT_TRUE(vanished);
  EXPECT_TRUE(survived);
}

TEST_F(MaterializeTest, DigestDeduplicatesIdenticalStates) {
  FaultyVfs v(Vfs::real());
  const std::string live = (root_ / "live").string();
  fs::create_directories(live);
  {
    auto f = v.create(live + "/j.bin");
    f->append("aa");
    f->sync();
  }
  v.sync_dir(live);
  const auto& log = v.log();
  // Everything is synced and committed: all three loss modes and any
  // seed materialize the same bytes, and the digest says so.
  const CrashState a = materialize_crash_state(
      log, log.size(), TailLoss::kKeepAll, 1, live, dst());
  const CrashState b = materialize_crash_state(
      log, log.size(), TailLoss::kSyncedOnly, 2, live, dst());
  const CrashState c = materialize_crash_state(
      log, log.size(), TailLoss::kTorn, 3, live, dst());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest, c.digest);
  EXPECT_NE(a.description, "");
}

}  // namespace
}  // namespace paradigm::vfs
