// Tests for the structured topology generators plus allocation
// behaviour on them (chains go wide; wide shapes split).
#include <gtest/gtest.h>

#include "core/topologies.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"

namespace paradigm::core {
namespace {

std::size_t loop_count(const mdg::Mdg& graph) {
  std::size_t count = 0;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop) ++count;
  }
  return count;
}

TEST(Topologies, ChainShape) {
  const mdg::Mdg graph = chain_mdg(10);
  EXPECT_EQ(loop_count(graph), 10u);
  // A chain has exactly one edge per consecutive pair plus START/STOP.
  EXPECT_EQ(graph.edge_count(), 9u + 2u);
}

TEST(Topologies, ForkJoinShape) {
  const mdg::Mdg graph = fork_join_mdg(4, 2);
  EXPECT_EQ(loop_count(graph), 2u + 4u * 2u);
}

TEST(Topologies, ButterflyShape) {
  const std::size_t stages = 3;
  const mdg::Mdg graph = butterfly_mdg(stages);
  const std::size_t lanes = 1u << stages;
  EXPECT_EQ(loop_count(graph), lanes * (stages + 1));
  // Every non-input node has exactly two data predecessors.
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    if (node.name.rfind("in", 0) == 0) continue;
    std::size_t data_preds = 0;
    for (const mdg::EdgeId e : node.in_edges) {
      if (graph.edge(e).total_bytes() > 0) ++data_preds;
    }
    EXPECT_EQ(data_preds, 2u) << node.name;
  }
}

TEST(Topologies, InTreeShape) {
  const mdg::Mdg graph = in_tree_mdg(3);
  // 8 leaves + 4 + 2 + 1 internal.
  EXPECT_EQ(loop_count(graph), 15u);
}

TEST(Topologies, DiamondGridShape) {
  const mdg::Mdg graph = diamond_grid_mdg(4);
  EXPECT_EQ(loop_count(graph), 16u);
}

TEST(Topologies, DeterministicForSeed) {
  const TopologyParams params;
  const mdg::Mdg a = butterfly_mdg(2, params);
  const mdg::Mdg b = butterfly_mdg(2, params);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.node(i).loop.synth_tau, b.node(i).loop.synth_tau);
  }
}

TEST(Topologies, InvalidParamsRejected) {
  EXPECT_THROW(chain_mdg(0), Error);
  EXPECT_THROW(butterfly_mdg(0), Error);
  EXPECT_THROW(diamond_grid_mdg(1), Error);
}

TEST(Topologies, ChainGainsNothingFromTaskParallelism) {
  // A chain has no functional parallelism: the PSA schedule on the
  // convex allocation should match the SPMD-style serialization of the
  // same allocation (everything is serialized either way).
  const mdg::Mdg graph = chain_mdg(8);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 16.0);
  // With no concurrency available, A_p <= C_p at the optimum: the
  // critical path is the binding constraint.
  EXPECT_LE(alloc.average_time, alloc.critical_path * 1.001);
}

TEST(Topologies, ForkJoinSplitsBranches) {
  // With 8 equal branches on 32 processors, the allocator should give
  // each branch roughly p/8 processors, not p.
  TopologyParams params;
  params.alpha_min = params.alpha_max = 0.1;
  params.tau_min = params.tau_max = 1.0;
  params.transfer_bytes = 1024;  // cheap transfers
  const mdg::Mdg graph = fork_join_mdg(8, 1, params);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 32.0);
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    if (node.name.rfind("b", 0) != 0) continue;  // branch stages
    EXPECT_LT(alloc.allocation[node.id], 16.0) << node.name;
    EXPECT_GT(alloc.allocation[node.id], 1.5) << node.name;
  }
  // And the PSA runs them concurrently.
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 32);
  psa.schedule.validate(model);
  std::size_t concurrent_with_first = 0;
  const mdg::NodeId first_branch = 2;  // "b0_s0"
  const auto& ref = psa.schedule.placement(first_branch);
  for (const auto& node : graph.nodes()) {
    if (node.id == first_branch || node.kind != mdg::NodeKind::kLoop ||
        node.name.rfind("b", 0) != 0) {
      continue;
    }
    const auto& sn = psa.schedule.placement(node.id);
    if (sn.start < ref.finish && sn.finish > ref.start) {
      ++concurrent_with_first;
    }
  }
  // At least a handful of the other seven branches overlap the first
  // one's execution window (rounding can stagger the rest).
  EXPECT_GE(concurrent_with_first, 3u);
}

}  // namespace
}  // namespace paradigm::core
