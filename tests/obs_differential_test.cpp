// Differential tests for the observability determinism contract
// (DESIGN §9):
//   * the exported metrics/trace bytes are identical across repeated
//     runs and across thread counts (logical mode),
//   * turning observability on — logical or wallclock — never changes
//     any pipeline or simulation result, bit for bit, including
//     fault-injected runs that exercise retries, duplicate suppression,
//     and crash timeouts.
#include <gtest/gtest.h>

#include <string>

#include "codegen/mpmd.hpp"
#include "core/json_export.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "support/parallel.hpp"
#include "viz/chrome_trace.hpp"

namespace paradigm {
namespace {

core::PipelineConfig small_config(std::uint64_t p, std::size_t starts) {
  core::PipelineConfig config;
  config.processors = p;
  config.machine.size = static_cast<std::uint32_t>(p);
  config.machine.noise_sigma = 0.0;
  config.calibration.repetitions = 1;
  config.solver.num_starts = starts;
  return config;
}

struct Exports {
  std::string metrics;
  std::string trace;
};

/// Full pipeline under `threads` pool threads with logical-mode
/// observability; returns the exported bytes.
Exports run_with_threads(std::size_t threads) {
  set_thread_count(threads);
  obs::reset_all();
  obs::set_mode(obs::Mode::kLogical);
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  const core::Compiler compiler(small_config(8, 4));
  compiler.compile_and_run(graph);
  Exports exports{obs::metrics_json(),
                  viz::chrome_trace_json(obs::Tracer::global())};
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();
  return exports;
}

TEST(ObsDifferential, ExportsAreIdenticalAcrossThreadCounts) {
  const std::size_t original = thread_count();
  const Exports serial = run_with_threads(1);
  const Exports serial_again = run_with_threads(1);
  const Exports pooled = run_with_threads(4);
  set_thread_count(original);

  // Repeated runs: byte-identical.
  EXPECT_EQ(serial.metrics, serial_again.metrics);
  EXPECT_EQ(serial.trace, serial_again.trace);
  // Thread counts: byte-identical (the tentpole claim).
  EXPECT_EQ(serial.metrics, pooled.metrics);
  EXPECT_EQ(serial.trace, pooled.trace);
  EXPECT_NE(serial.metrics.find("solver.iterations"), std::string::npos);
  EXPECT_NE(serial.trace.find("solver/start3"), std::string::npos);
}

/// Pipeline report serialized with observability in `mode`.
std::string report_json(obs::Mode mode) {
  obs::reset_all();
  obs::set_mode(mode);
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  const core::Compiler compiler(small_config(8, 2));
  const core::PipelineReport report = compiler.compile_and_run(graph);
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();
  return core::report_to_json(report).dump();
}

TEST(ObsDifferential, ObservabilityNeverChangesThePipelineReport) {
  const std::string off = report_json(obs::Mode::kOff);
  const std::string logical = report_json(obs::Mode::kLogical);
  const std::string wallclock = report_json(obs::Mode::kWallclock);
  EXPECT_EQ(off, logical);
  EXPECT_EQ(off, wallclock);
}

/// Simulates the complex-matmul MPMD program under `plan` (optional)
/// with observability in `mode`, returning the full SimResult.
sim::SimResult simulate(const mdg::Mdg& graph,
                        const sched::Schedule& schedule,
                        const sim::MachineConfig& machine,
                        const sim::FaultPlan* plan, obs::Mode mode) {
  obs::reset_all();
  obs::set_mode(mode);
  const codegen::GeneratedProgram generated =
      codegen::generate_mpmd(graph, schedule);
  sim::Simulator simulator(machine);
  sim::SimResult result = plan != nullptr
                              ? simulator.run(generated.program, *plan)
                              : simulator.run(generated.program);
  obs::set_mode(obs::Mode::kOff);
  obs::reset_all();
  return result;
}

TEST(ObsDifferential, ObservabilityNeverChangesSimResults) {
  const mdg::Mdg graph = core::complex_matmul_mdg(16);
  const core::PipelineConfig config = small_config(8, 1);
  const core::Compiler compiler(config);
  const core::PipelineReport report = compiler.compile_and_run(graph);
  ASSERT_TRUE(report.psa.has_value());
  const sched::Schedule& schedule = report.psa->schedule;

  // Fault-free run: every field of SimResult (including the new busy /
  // blocked / traffic accounting) is bit-identical with obs on or off.
  const sim::SimResult clean_off =
      simulate(graph, schedule, config.machine, nullptr, obs::Mode::kOff);
  const sim::SimResult clean_on = simulate(graph, schedule, config.machine,
                                           nullptr, obs::Mode::kLogical);
  EXPECT_EQ(clean_off, clean_on);

  // Faulty run: drops (retries + backoff), duplicates (suppression),
  // and a crash (timeouts) — the instrumented paths with the most
  // branches — still bit-identical.
  sim::FaultPlan plan;
  plan.seed = 71;
  plan.drop_probability = 0.1;
  plan.duplicate_probability = 0.1;
  plan.crashes.push_back(
      sim::CrashFault{1, 0.5 * clean_off.finish_time});
  const sim::SimResult faulty_off =
      simulate(graph, schedule, config.machine, &plan, obs::Mode::kOff);
  const sim::SimResult faulty_on = simulate(graph, schedule, config.machine,
                                            &plan, obs::Mode::kLogical);
  EXPECT_EQ(faulty_off, faulty_on);
  EXPECT_TRUE(faulty_off.aborted || !faulty_off.failed_ranks.empty());
}

}  // namespace
}  // namespace paradigm
