// Tests for the extension features: static cost estimation, list-
// scheduler priority policies, and machine presets.
#include <gtest/gtest.h>

#include "calibrate/static_estimate.hpp"
#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/bounds.hpp"
#include "sched/psa.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm {
namespace {

// ---- static estimation ------------------------------------------------------

TEST(StaticEstimate, KernelParamsMatchMachineDescription) {
  const sim::MachineConfig mc = sim::MachineConfig::cm5(16);
  const cost::AmdahlParams params = calibrate::static_kernel_params(
      mc, cost::KernelKey{mdg::LoopOp::kMul, 64, 64, 64});
  EXPECT_DOUBLE_EQ(params.alpha, mc.mul_timing.serial_fraction);
  EXPECT_DOUBLE_EQ(params.tau,
                   mc.sequential_seconds(mdg::LoopOp::kMul, 64, 64, 64));
}

TEST(StaticEstimate, SyntheticRejected) {
  const sim::MachineConfig mc = sim::MachineConfig::cm5(4);
  EXPECT_THROW(calibrate::static_kernel_params(
                   mc, cost::KernelKey{mdg::LoopOp::kSynthetic, 4, 4, 0}),
               Error);
}

TEST(StaticEstimate, MachineParamsMirrorConfig) {
  const sim::MachineConfig mc = sim::MachineConfig::paragon(8);
  const cost::MachineParams mp = calibrate::static_machine_params(mc);
  EXPECT_DOUBLE_EQ(mp.t_ss, mc.send_startup);
  EXPECT_DOUBLE_EQ(mp.t_pr, mc.recv_per_byte);
  EXPECT_DOUBLE_EQ(mp.t_n, 0.0);
}

TEST(StaticEstimate, TableCoversGraph) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  const cost::KernelCostTable table = calibrate::static_table_for_graph(
      sim::MachineConfig::cm5(8), graph);
  EXPECT_EQ(table.size(), 4u);
}

TEST(StaticEstimate, StaticUnderestimatesTrainedTau) {
  // The trained tau absorbs overheads the static estimate cannot see,
  // so trained >= static (strictly, for multi-processor overhead-bearing
  // kernels measured across group sizes).
  const sim::MachineConfig mc = sim::MachineConfig::cm5(16);
  calibrate::CalibrationConfig config;
  config.repetitions = 1;
  const calibrate::KernelFit trained = calibrate::calibrate_kernel(
      mc, mdg::LoopOp::kMul, 64, 64, 64, config);
  const cost::AmdahlParams statics = calibrate::static_kernel_params(
      mc, cost::KernelKey{mdg::LoopOp::kMul, 64, 64, 64});
  // Compare predicted cost at a mid-size group.
  EXPECT_GE(trained.params.time(16.0), statics.time(16.0));
}

TEST(StaticEstimate, PipelineStaticModeEndToEnd) {
  core::PipelineConfig config;
  config.processors = 8;
  config.machine = sim::MachineConfig::cm5(8);
  config.machine.noise_sigma = 0.0;
  config.calibration_mode = core::CalibrationMode::kStatic;
  const core::Compiler compiler(config);
  const core::PipelineReport report =
      compiler.compile_and_run(core::complex_matmul_mdg(32));
  EXPECT_GT(report.mpmd.simulated, 0.0);
  // Static predictions are optimistic but in the right ballpark.
  EXPECT_NEAR(report.mpmd.predicted, report.mpmd.simulated,
              0.4 * report.mpmd.simulated);
}

// ---- list-priority policies ---------------------------------------------------

class PolicySeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolicySeeded, AllPoliciesProduceValidSchedules) {
  Rng rng(GetParam());
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const std::uint64_t p = 16;
  const auto alloc = solver::ConvexAllocator{}.allocate(
      model, static_cast<double>(p));
  auto rounded = sched::round_allocation(alloc.allocation, p);
  rounded = sched::bound_allocation(std::move(rounded),
                                    sched::optimal_processor_bound(p));
  for (const sched::ListPriority policy :
       {sched::ListPriority::kLowestEst,
        sched::ListPriority::kLargestWeight,
        sched::ListPriority::kBottomLevel}) {
    const sched::Schedule schedule =
        sched::list_schedule(model, rounded, p, policy);
    schedule.validate(model);
    // Theorem 1 applies to the whole family: same bound shape.
    EXPECT_LE(schedule.makespan(),
              sched::theorem3_factor(p, sched::optimal_processor_bound(p)) *
                  alloc.phi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicySeeded,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Policies, DefaultIsLowestEst) {
  // list_schedule's default must reproduce the PSA behaviour exactly.
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  std::vector<std::uint64_t> alloc(graph.node_count(), 1);
  alloc[0] = 4;
  alloc[1] = 2;
  alloc[2] = 2;
  const auto a = sched::list_schedule(model, alloc, 4);
  const auto b = sched::list_schedule(model, alloc, 4,
                                      sched::ListPriority::kLowestEst);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
}

// ---- machine presets ----------------------------------------------------------

TEST(Presets, ProfilesAreDistinctAndSane) {
  const auto cm5 = sim::MachineConfig::cm5(64);
  const auto paragon = sim::MachineConfig::paragon(64);
  const auto sp1 = sim::MachineConfig::sp1(64);
  EXPECT_EQ(cm5.size, 64u);
  // Paragon: much cheaper startup and per-byte network than CM-5.
  EXPECT_LT(paragon.send_startup, cm5.send_startup / 2);
  EXPECT_LT(paragon.send_per_byte, cm5.send_per_byte / 4);
  // SP-1: faster processors than both.
  EXPECT_LT(sp1.flop_time, cm5.flop_time / 2);
  EXPECT_LT(sp1.flop_time, paragon.flop_time);
}

TEST(Presets, PipelineRunsOnEveryPreset) {
  const mdg::Mdg graph = core::complex_matmul_mdg(32);
  for (const auto& mc :
       {sim::MachineConfig::cm5(8), sim::MachineConfig::paragon(8),
        sim::MachineConfig::sp1(8)}) {
    core::PipelineConfig config;
    config.processors = 8;
    config.machine = mc;
    config.machine.noise_sigma = 0.0;
    config.calibration.repetitions = 1;
    const core::Compiler compiler(config);
    const core::PipelineReport report = compiler.compile_and_run(graph);
    EXPECT_GT(report.mpmd_speedup(), 1.0);
  }
}

}  // namespace
}  // namespace paradigm
