// Crash-quiescence soak (DESIGN §12, `ctest -L recovery`): a mixed
// job corpus is run under the durability layer and deliberately
// crashed after *every single* journal append; each crash is followed
// by a recovery run, and the post-recovery ledger must be byte-identical
// to the crash-free run's — at 1 and at 4 worker threads — with
// exactly-once execution asserted per (job, attempt) from both the
// service accounting and the journal itself. Journals of failing
// boundaries are archived to $PARADIGM_RECOVERY_ARTIFACT_DIR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/parallel.hpp"
#include "support/wal.hpp"
#include "svc/persist.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

namespace fs = std::filesystem;

/// Deterministic mixed corpus (≥50 jobs): clean runs, pathological
/// graphs (breaker food), oversized submissions, deadline-doomed work,
/// alternating classes — the same shape as the DESIGN §11 soak, sized
/// so the crash-at-every-boundary sweep stays tractable.
std::vector<JobSpec> crash_corpus() {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 50; ++i) {
    JobSpec spec;
    spec.id = "c";
    spec.id += std::to_string(i);
    spec.seed = 2000 + i;
    spec.arrival = i * 30;
    spec.processors = (i % 3 == 0) ? 4 : 8;
    spec.nodes = 6 + (i % 4);
    spec.job_class = (i % 4 == 0) ? "alt" : "default";
    switch (i % 10) {
      case 3:
        spec.graph = GraphKind::kPathological;
        spec.seed = 1 + (i % 7);
        spec.processors = 5;  // Not a power of two: hard failure, feeds the breaker.
        spec.arrival = i;     // Early arrival: fails before the drain cutoff.
        break;
      case 5:
        spec.nodes = 4096;  // Rejected oversized.
        break;
      case 7:
        spec.deadline = 20 + (i % 13);  // Deadline-doomed.
        break;
      default:
        break;
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

/// Cheap pipeline settings: the sweep runs O(records × jobs) pipeline
/// attempts, so each attempt is kept as small as determinism allows.
ServiceConfig crash_config() {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 10;
  config.pipeline.solver.continuation_rounds = 1;
  config.queue_capacity = 6;
  config.slots = 2;
  config.max_nodes = 512;
  config.default_deadline = 30000;
  config.max_retries = 1;
  config.breaker_threshold = 2;
  config.breaker_cooldown = 400;
  return config;
}

constexpr std::uint64_t kDrainAt = 1200;
constexpr std::uint64_t kDrainGrace = 6000;
/// One snapshot lands mid-run, so the sweep also crashes inside
/// snapshot writes and recovers through (and from) snapshots.
constexpr std::size_t kSnapshotEvery = 24;

/// Submits the full corpus every run — including recovery runs. The
/// client re-offering its inputs is the crash-quiescence contract:
/// Persistence::begin_run prefix-checks them against the journaled
/// submissions and journals only the not-yet-durable tail, so a crash
/// mid-submission still recovers to the crash-free ledger.
ServiceReport run_service(Persistence* persist) {
  Service service(crash_config());
  for (JobSpec& spec : crash_corpus()) service.submit(std::move(spec));
  service.drain_at(kDrainAt, kDrainGrace);
  if (persist != nullptr) service.attach_persistence(persist);
  return service.run();
}

/// Asserts the journal holds exactly one exec digest per (job index,
/// attempt) — the on-disk half of the exactly-once contract.
void assert_unique_exec_records(const std::string& journal_path) {
  const wal::ReadResult read = wal::read_journal(journal_path);
  std::set<std::string> exec_keys;
  for (const std::string& record : read.records) {
    if (record.rfind("exec ", 0) != 0) continue;
    std::istringstream in(record);
    std::string tag, index, attempt;
    in >> tag >> index >> attempt;
    const std::string key = index + "/" + attempt;
    EXPECT_TRUE(exec_keys.insert(key).second)
        << "duplicate exec digest " << key << " in " << journal_path;
  }
}

/// Asserts one terminal ledger record per (id, attempt).
void assert_unique_ledger_records(const std::string& ledger) {
  std::set<std::string> keys;
  std::istringstream in(ledger);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string job, attempt;
    fields >> job >> attempt;
    EXPECT_TRUE(keys.insert(job + "/" + attempt).second)
        << "duplicate ledger record: " << line;
  }
}

/// On failure, copies the journal directory to the CI artifact
/// directory (PARADIGM_RECOVERY_ARTIFACT_DIR) so the exact crash
/// boundary can be replayed offline.
void archive_on_failure(const fs::path& dir, const std::string& tag) {
  const char* artifact_dir = std::getenv("PARADIGM_RECOVERY_ARTIFACT_DIR");
  if (artifact_dir == nullptr || artifact_dir[0] == '\0') return;
  std::error_code ec;
  const fs::path dest = fs::path(artifact_dir) / tag;
  fs::create_directories(dest, ec);
  fs::copy(dir, dest, fs::copy_options::recursive |
                          fs::copy_options::overwrite_existing, ec);
}

class CrashSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("crash_soak_" + std::string(
                                 ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    set_thread_count(0);
    fs::remove_all(root_);
  }

  /// The full crash-at-every-boundary sweep at one thread count.
  void sweep(std::size_t threads) {
    set_thread_count(threads);

    const ServiceReport baseline = run_service(nullptr);
    const std::string expected = baseline.ledger();
    assert_unique_ledger_records(expected);

    // Crash-free journaled run: byte-identical ledger, and its durable
    // append count (journal AND snapshot records, counted by an
    // unarmed CrashPoint) defines the boundary space for the sweep.
    const fs::path clean_dir = root_ / ("clean-t" + std::to_string(threads));
    wal::CrashPoint probe;
    {
      PersistConfig pc;
      pc.dir = clean_dir.string();
      pc.snapshot_every = kSnapshotEvery;
      pc.crash = &probe;
      Persistence persist(pc);
      const ServiceReport journaled = run_service(&persist);
      ASSERT_EQ(journaled.ledger(), expected)
          << "journaling changed the ledger";
      ASSERT_EQ(journaled.pipeline_runs, baseline.pipeline_runs);
      assert_unique_exec_records(persist.journal_path());
    }
    const std::uint64_t total_appends = probe.appends();
    ASSERT_GT(total_appends, 100u) << "corpus too small to be a soak";

    for (std::uint64_t boundary = 0; boundary < total_appends; ++boundary) {
      // Torn crashes every third boundary: recovery then also has to
      // truncate a half-written record, not just continue a clean tail.
      const bool torn = boundary % 3 == 1;
      const fs::path dir =
          root_ / ("t" + std::to_string(threads) + "-b" +
                   std::to_string(boundary));
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " boundary=" + std::to_string(boundary) +
                   (torn ? " torn" : ""));

      wal::CrashPoint crash;
      crash.arm(boundary, torn);
      {
        PersistConfig pc;
        pc.dir = dir.string();
        pc.snapshot_every = kSnapshotEvery;
        pc.crash = &crash;
        Persistence persist(pc);
        ASSERT_THROW(run_service(&persist), wal::CrashInjected);
      }

      PersistConfig pc;
      pc.dir = dir.string();
      pc.recover = true;
      pc.snapshot_every = kSnapshotEvery;
      Persistence persist(pc);
      const ServiceReport recovered = run_service(&persist);
      const std::string ledger = recovered.ledger();

      EXPECT_EQ(ledger, expected);
      // Exactly-once: every baseline attempt was either re-served from
      // its durable digest or executed by the recovery run.
      EXPECT_EQ(recovered.pipeline_runs + persist.stats().memo_hits,
                baseline.pipeline_runs);
      assert_unique_ledger_records(ledger);
      assert_unique_exec_records(persist.journal_path());

      if (::testing::Test::HasFailure()) {
        archive_on_failure(dir, "t" + std::to_string(threads) + "-b" +
                                    std::to_string(boundary));
        FAIL() << "crash boundary " << boundary
               << " failed; journal archived";
      }
      fs::remove_all(dir);  // Keep the sweep's disk footprint bounded.
    }
  }

  fs::path root_;
};

// ---- Cache-enabled crash sweep (DESIGN §13) ----------------------------------

/// Compact duplicate-heavy corpus for the cache-enabled sweep: six
/// distinct templates spread over 24 jobs (same-instant duplicate
/// bursts for coalescing, staggered repeats for cache hits), plus one
/// oversized rejection and one deadline-doomed job so non-executing
/// outcomes stay in the boundary space.
std::vector<JobSpec> cache_crash_corpus() {
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 24; ++i) {
    JobSpec spec;
    spec.id = "k";
    spec.id += std::to_string(i);
    // Jobs 0..3 are four identical same-instant copies of template 0
    // (the coalescing burst); the rest cycle the six templates.
    const std::size_t tmpl = i < 4 ? 0 : i % 6;
    spec.seed = 3000 + tmpl;
    spec.nodes = 5 + tmpl % 3;
    spec.processors = tmpl < 3 ? 4 : 8;
    spec.arrival = i < 4 ? 0 : 400 + i * 60;
    if (i == 20) spec.nodes = 4096;      // Rejected oversized.
    if (i == 21) spec.deadline = 5;      // Deadline-doomed.
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

ServiceConfig cache_crash_config() {
  ServiceConfig config = crash_config();
  config.slots = 4;
  config.queue_capacity = 25;
  config.cache.enabled = true;
  return config;
}

ServiceReport run_cached_service(Persistence* persist) {
  Service service(cache_crash_config());
  for (JobSpec& spec : cache_crash_corpus()) service.submit(std::move(spec));
  if (persist != nullptr) service.attach_persistence(persist);
  return service.run();
}

TEST_F(CrashSoak, EveryBoundaryRecoversByteIdenticalSerial) { sweep(1); }

TEST_F(CrashSoak, EveryBoundaryRecoversByteIdenticalFourThreads) {
  sweep(4);
}

/// Cache-enabled crash sweep: with the allocation cache on, journal
/// appends now include the start/digest records of *cache-hit*
/// attempts — every one of those is a crash boundary too. After every
/// crash the recovered ledger must be byte-identical, and exactly-once
/// extends to the reuse tiers: each baseline attempt is served in
/// recovery by exactly one of {WAL memo, cache hit, coalesce, fresh
/// run} (DESIGN §13).
TEST_F(CrashSoak, CacheHitBoundariesRecoverByteIdentical) {
  set_thread_count(4);
  const ServiceReport baseline = run_cached_service(nullptr);
  const std::string expected = baseline.ledger();
  assert_unique_ledger_records(expected);
  // The corpus must exercise every reuse tier or the sweep proves
  // less than it claims.
  ASSERT_GT(baseline.cache_hits, 0u);
  ASSERT_GT(baseline.coalesced, 0u);
  const std::size_t baseline_served =
      baseline.pipeline_runs + baseline.cache_hits + baseline.coalesced;

  const fs::path clean_dir = root_ / "cache-clean";
  wal::CrashPoint probe;
  {
    PersistConfig pc;
    pc.dir = clean_dir.string();
    pc.snapshot_every = 16;
    pc.crash = &probe;
    Persistence persist(pc);
    const ServiceReport journaled = run_cached_service(&persist);
    ASSERT_EQ(journaled.ledger(), expected)
        << "journaling changed the cached ledger";
    ASSERT_EQ(journaled.cache_hits, baseline.cache_hits);
    ASSERT_EQ(journaled.coalesced, baseline.coalesced);
    assert_unique_exec_records(persist.journal_path());
  }
  const std::uint64_t total_appends = probe.appends();
  ASSERT_GT(total_appends, 80u) << "corpus too small to be a soak";

  for (std::uint64_t boundary = 0; boundary < total_appends; ++boundary) {
    const bool torn = boundary % 3 == 1;
    const fs::path dir = root_ / ("cache-b" + std::to_string(boundary));
    SCOPED_TRACE("cache boundary=" + std::to_string(boundary) +
                 (torn ? " torn" : ""));

    wal::CrashPoint crash;
    crash.arm(boundary, torn);
    {
      PersistConfig pc;
      pc.dir = dir.string();
      pc.snapshot_every = 16;
      pc.crash = &crash;
      Persistence persist(pc);
      ASSERT_THROW(run_cached_service(&persist), wal::CrashInjected);
    }

    PersistConfig pc;
    pc.dir = dir.string();
    pc.recover = true;
    pc.snapshot_every = 16;
    Persistence persist(pc);
    const ServiceReport recovered = run_cached_service(&persist);

    EXPECT_EQ(recovered.ledger(), expected);
    // Extended exactly-once: every slot-served baseline attempt is
    // re-served by exactly one reuse tier (memoized WAL hits counted).
    EXPECT_EQ(recovered.pipeline_runs + recovered.cache_hits +
                  recovered.coalesced + persist.stats().memo_hits,
              baseline_served);
    assert_unique_ledger_records(recovered.ledger());
    assert_unique_exec_records(persist.journal_path());

    if (::testing::Test::HasFailure()) {
      archive_on_failure(dir, "cache-b" + std::to_string(boundary));
      FAIL() << "cache crash boundary " << boundary
             << " failed; journal archived";
    }
    fs::remove_all(dir);
  }
}

/// The corpus must genuinely exercise the service paths, otherwise the
/// sweep proves less than it claims.
TEST_F(CrashSoak, CorpusReachesDiverseOutcomes) {
  const ServiceReport report = run_service(nullptr);
  std::map<std::string, int> outcomes;
  std::istringstream in(report.ledger());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t pos = line.find("outcome=");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::size_t end = line.find(' ', pos);
    ++outcomes[line.substr(pos + 8, end - pos - 8)];
  }
  std::ostringstream dist;
  for (const auto& [name, count] : outcomes) dist << name << "=" << count << " ";
  EXPECT_GT(outcomes["completed"], 0) << dist.str();
  EXPECT_GT(outcomes["rejected-oversized"], 0) << dist.str();
  EXPECT_GT(outcomes["rejected-draining"], 0) << dist.str();
  EXPECT_GT(outcomes["cancelled-deadline"], 0) << dist.str();
  EXPECT_GT(outcomes["failed"] + outcomes["shed-breaker"], 0) << dist.str();
}

}  // namespace
}  // namespace paradigm::svc
