// Crash-quiescence soak (DESIGN §12, `ctest -L recovery`): a mixed
// job corpus is run under the durability layer and deliberately
// crashed after *every single* journal append; each crash is followed
// by a recovery run, and the post-recovery ledger must be byte-identical
// to the crash-free run's — at 1 and at 4 worker threads — with
// exactly-once execution asserted per (job, attempt) from both the
// service accounting and the journal itself. Journals of failing
// boundaries are archived to $PARADIGM_RECOVERY_ARTIFACT_DIR.
//
// The corpus, config and assertion helpers live in crash_corpus.hpp,
// shared with the storage-fault sweep (storage_fault_test.cpp).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>

#include "crash_corpus.hpp"
#include "support/parallel.hpp"
#include "support/wal.hpp"
#include "svc/persist.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

namespace fs = std::filesystem;

class CrashSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("crash_soak_" + std::string(
                                 ::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    set_thread_count(0);
    fs::remove_all(root_);
  }

  /// The full crash-at-every-boundary sweep at one thread count.
  void sweep(std::size_t threads) {
    set_thread_count(threads);

    const ServiceReport baseline = run_crash_service(nullptr);
    const std::string expected = baseline.ledger();
    assert_unique_ledger_records(expected);

    // Crash-free journaled run: byte-identical ledger, and its durable
    // append count (journal AND snapshot records, counted by an
    // unarmed CrashPoint) defines the boundary space for the sweep.
    const fs::path clean_dir = root_ / ("clean-t" + std::to_string(threads));
    wal::CrashPoint probe;
    {
      PersistConfig pc;
      pc.dir = clean_dir.string();
      pc.snapshot_every = kCrashSnapshotEvery;
      pc.crash = &probe;
      Persistence persist(pc);
      const ServiceReport journaled = run_crash_service(&persist);
      ASSERT_EQ(journaled.ledger(), expected)
          << "journaling changed the ledger";
      ASSERT_EQ(journaled.pipeline_runs, baseline.pipeline_runs);
      assert_unique_exec_records(persist.journal_path());
    }
    const std::uint64_t total_appends = probe.appends();
    ASSERT_GT(total_appends, 100u) << "corpus too small to be a soak";

    for (std::uint64_t boundary = 0; boundary < total_appends; ++boundary) {
      // Torn crashes every third boundary: recovery then also has to
      // truncate a half-written record, not just continue a clean tail.
      const bool torn = boundary % 3 == 1;
      const fs::path dir =
          root_ / ("t" + std::to_string(threads) + "-b" +
                   std::to_string(boundary));
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " boundary=" + std::to_string(boundary) +
                   (torn ? " torn" : ""));

      wal::CrashPoint crash;
      crash.arm(boundary, torn);
      {
        PersistConfig pc;
        pc.dir = dir.string();
        pc.snapshot_every = kCrashSnapshotEvery;
        pc.crash = &crash;
        Persistence persist(pc);
        ASSERT_THROW(run_crash_service(&persist), wal::CrashInjected);
      }

      PersistConfig pc;
      pc.dir = dir.string();
      pc.recover = true;
      pc.snapshot_every = kCrashSnapshotEvery;
      Persistence persist(pc);
      const ServiceReport recovered = run_crash_service(&persist);
      const std::string ledger = recovered.ledger();

      EXPECT_EQ(ledger, expected);
      // Exactly-once: every baseline attempt was either re-served from
      // its durable digest or executed by the recovery run.
      EXPECT_EQ(recovered.pipeline_runs + persist.stats().memo_hits,
                baseline.pipeline_runs);
      assert_unique_ledger_records(ledger);
      assert_unique_exec_records(persist.journal_path());

      if (::testing::Test::HasFailure()) {
        archive_on_failure(dir, "t" + std::to_string(threads) + "-b" +
                                    std::to_string(boundary));
        FAIL() << "crash boundary " << boundary
               << " failed; journal archived";
      }
      fs::remove_all(dir);  // Keep the sweep's disk footprint bounded.
    }
  }

  fs::path root_;
};

TEST_F(CrashSoak, EveryBoundaryRecoversByteIdenticalSerial) { sweep(1); }

TEST_F(CrashSoak, EveryBoundaryRecoversByteIdenticalFourThreads) {
  sweep(4);
}

/// Cache-enabled crash sweep: with the allocation cache on, journal
/// appends now include the start/digest records of *cache-hit*
/// attempts — every one of those is a crash boundary too. After every
/// crash the recovered ledger must be byte-identical, and exactly-once
/// extends to the reuse tiers: each baseline attempt is served in
/// recovery by exactly one of {WAL memo, cache hit, coalesce, fresh
/// run} (DESIGN §13).
TEST_F(CrashSoak, CacheHitBoundariesRecoverByteIdentical) {
  set_thread_count(4);
  const ServiceReport baseline = run_cached_crash_service(nullptr);
  const std::string expected = baseline.ledger();
  assert_unique_ledger_records(expected);
  // The corpus must exercise every reuse tier or the sweep proves
  // less than it claims.
  ASSERT_GT(baseline.cache_hits, 0u);
  ASSERT_GT(baseline.coalesced, 0u);
  const std::size_t baseline_served =
      baseline.pipeline_runs + baseline.cache_hits + baseline.coalesced;

  const fs::path clean_dir = root_ / "cache-clean";
  wal::CrashPoint probe;
  {
    PersistConfig pc;
    pc.dir = clean_dir.string();
    pc.snapshot_every = 16;
    pc.crash = &probe;
    Persistence persist(pc);
    const ServiceReport journaled = run_cached_crash_service(&persist);
    ASSERT_EQ(journaled.ledger(), expected)
        << "journaling changed the cached ledger";
    ASSERT_EQ(journaled.cache_hits, baseline.cache_hits);
    ASSERT_EQ(journaled.coalesced, baseline.coalesced);
    assert_unique_exec_records(persist.journal_path());
  }
  const std::uint64_t total_appends = probe.appends();
  ASSERT_GT(total_appends, 80u) << "corpus too small to be a soak";

  for (std::uint64_t boundary = 0; boundary < total_appends; ++boundary) {
    const bool torn = boundary % 3 == 1;
    const fs::path dir = root_ / ("cache-b" + std::to_string(boundary));
    SCOPED_TRACE("cache boundary=" + std::to_string(boundary) +
                 (torn ? " torn" : ""));

    wal::CrashPoint crash;
    crash.arm(boundary, torn);
    {
      PersistConfig pc;
      pc.dir = dir.string();
      pc.snapshot_every = 16;
      pc.crash = &crash;
      Persistence persist(pc);
      ASSERT_THROW(run_cached_crash_service(&persist), wal::CrashInjected);
    }

    PersistConfig pc;
    pc.dir = dir.string();
    pc.recover = true;
    pc.snapshot_every = 16;
    Persistence persist(pc);
    const ServiceReport recovered = run_cached_crash_service(&persist);

    EXPECT_EQ(recovered.ledger(), expected);
    // Extended exactly-once: every slot-served baseline attempt is
    // re-served by exactly one reuse tier (memoized WAL hits counted).
    EXPECT_EQ(recovered.pipeline_runs + recovered.cache_hits +
                  recovered.coalesced + persist.stats().memo_hits,
              baseline_served);
    assert_unique_ledger_records(recovered.ledger());
    assert_unique_exec_records(persist.journal_path());

    if (::testing::Test::HasFailure()) {
      archive_on_failure(dir, "cache-b" + std::to_string(boundary));
      FAIL() << "cache crash boundary " << boundary
             << " failed; journal archived";
    }
    fs::remove_all(dir);
  }
}

/// The corpus must genuinely exercise the service paths, otherwise the
/// sweep proves less than it claims.
TEST_F(CrashSoak, CorpusReachesDiverseOutcomes) {
  const ServiceReport report = run_crash_service(nullptr);
  std::map<std::string, int> outcomes;
  std::istringstream in(report.ledger());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t pos = line.find("outcome=");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::size_t end = line.find(' ', pos);
    ++outcomes[line.substr(pos + 8, end - pos - 8)];
  }
  std::ostringstream dist;
  for (const auto& [name, count] : outcomes) dist << name << "=" << count << " ";
  EXPECT_GT(outcomes["completed"], 0) << dist.str();
  EXPECT_GT(outcomes["rejected-oversized"], 0) << dist.str();
  EXPECT_GT(outcomes["rejected-draining"], 0) << dist.str();
  EXPECT_GT(outcomes["cancelled-deadline"], 0) << dist.str();
  EXPECT_GT(outcomes["failed"] + outcomes["shed-breaker"], 0) << dist.str();
}

}  // namespace
}  // namespace paradigm::svc
