// Tests for the L-BFGS allocator: agreement with the projected-gradient
// reference solver, dominance over baselines, and iteration savings.
#include <gtest/gtest.h>

#include "core/programs.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "solver/lbfgs.hpp"
#include "solver/oracle.hpp"
#include "support/rng.hpp"

namespace paradigm::solver {
namespace {

cost::CostModel synthetic_model(const mdg::Mdg& graph) {
  return cost::CostModel(graph, cost::MachineParams{},
                         cost::KernelCostTable{});
}

class LbfgsSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LbfgsSeeded, AgreesWithProjectedGradient) {
  Rng rng(GetParam());
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  const double p = 32.0;
  const AllocationResult pg = ConvexAllocator{}.allocate(model, p);
  const AllocationResult lbfgs = LbfgsAllocator{}.allocate(model, p);
  // Both must find (approximately) the same global optimum of the same
  // convex problem.
  EXPECT_NEAR(lbfgs.phi, pg.phi, 0.01 * pg.phi)
      << "pg " << pg.summary() << " / lbfgs " << lbfgs.summary();
}

TEST_P(LbfgsSeeded, MatchesOracleOnSmallGraphs) {
  Rng rng(GetParam() + 77);
  mdg::RandomMdgConfig config;
  config.min_nodes = 3;
  config.max_nodes = 4;
  config.max_width = 2;
  const mdg::Mdg graph = mdg::random_mdg(rng, config);
  const cost::CostModel model = synthetic_model(graph);
  const double p = 16.0;
  OracleConfig oc;
  oc.grid_points = 9;
  const AllocationResult oracle = oracle_allocation(model, p, oc);
  const AllocationResult lbfgs = LbfgsAllocator{}.allocate(model, p);
  EXPECT_LE(lbfgs.phi, oracle.phi * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbfgsSeeded,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Lbfgs, Figure1Optimum) {
  const mdg::Mdg graph = core::figure1_example();
  const cost::CostModel model = synthetic_model(graph);
  const AllocationResult result = LbfgsAllocator{}.allocate(model, 4.0);
  EXPECT_LE(result.phi, 14.3 * 1.001);
}

TEST(Lbfgs, ConvergesInFewerInnerIterationsOnBigGraphs) {
  Rng rng(4242);
  mdg::RandomMdgConfig config;
  config.min_nodes = 40;
  config.max_nodes = 40;
  config.max_width = 8;
  const mdg::Mdg graph = mdg::random_mdg(rng, config);
  const cost::CostModel model = synthetic_model(graph);
  const AllocationResult pg = ConvexAllocator{}.allocate(model, 64.0);
  const AllocationResult lbfgs = LbfgsAllocator{}.allocate(model, 64.0);
  EXPECT_NEAR(lbfgs.phi, pg.phi, 0.01 * pg.phi);
  EXPECT_LT(lbfgs.iterations, pg.iterations)
      << "lbfgs " << lbfgs.iterations << " vs pg " << pg.iterations;
}

TEST(Lbfgs, AllocationInBox) {
  Rng rng(9);
  const mdg::Mdg graph = mdg::random_mdg(rng);
  const cost::CostModel model = synthetic_model(graph);
  const AllocationResult result = LbfgsAllocator{}.allocate(model, 16.0);
  for (const double a : result.allocation) {
    EXPECT_GE(a, 1.0);
    EXPECT_LE(a, 16.0);
  }
}

}  // namespace
}  // namespace paradigm::solver
