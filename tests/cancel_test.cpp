// Cancellation safety (DESIGN §11). Two layers:
//
//  * CancelToken unit semantics — deadline/watchdog/external trip
//    rules, precedence, and the deterministic parallel-Region
//    accounting (trip on base + local, index-order commit);
//  * a pipeline cancellation sweep — run once to learn the total tick
//    count T, then cancel at *every* charge boundary in [1, T] (strided
//    only when T is large) and assert each partial PipelineReport is
//    internally consistent: finite committed values, a cancellation
//    diagnostic, no invariant violations, and monotone tick accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "core/programs.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace paradigm {
namespace {

// ---- CancelToken semantics ---------------------------------------------------

TEST(CancelToken, DeadlineTrips) {
  CancelToken token(5);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(token.tick());
  EXPECT_TRUE(token.tick());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_EQ(token.ticks(), 5u);
  EXPECT_THROW(token.checkpoint("test"), Cancelled);
}

TEST(CancelToken, ZeroDeadlineIsUnlimited) {
  CancelToken token;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(token.tick());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancelToken, WatchdogTripsWithoutProgress) {
  CancelToken token(0, 3);
  EXPECT_FALSE(token.tick());
  EXPECT_FALSE(token.tick());
  token.progress();  // Stall counter resets; the budget does not.
  EXPECT_FALSE(token.tick());
  EXPECT_FALSE(token.tick());
  EXPECT_TRUE(token.tick());
  EXPECT_EQ(token.reason(), CancelReason::kWatchdog);
}

TEST(CancelToken, ExternalWinsPrecedence) {
  CancelToken token(1, 1);
  token.tick();  // Deadline and watchdog are both already trippable.
  token.cancel();
  EXPECT_EQ(token.reason(), CancelReason::kExternal);
  try {
    token.checkpoint("here");
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_EQ(c.reason(), CancelReason::kExternal);
    EXPECT_NE(std::string(c.what()).find("here"), std::string::npos);
  }
}

TEST(CancelToken, CancelledIsAnError) {
  // Legacy catch(Error) sites keep compiling; Cancelled must still be
  // distinguishable (handlers catch it first and rethrow).
  CancelToken token;
  token.cancel();
  EXPECT_THROW(token.checkpoint("x"), Error);
}

TEST(CancelToken, RegionTripsOnBasePlusLocal) {
  CancelToken parent(10);
  parent.tick(8);  // base = 8.
  CancelToken::Region region(parent);
  EXPECT_FALSE(region.tick());  // 8 + 1.
  EXPECT_TRUE(region.tick());   // 8 + 2 >= 10.
  EXPECT_EQ(region.reason(), CancelReason::kDeadline);
  // The parent has not been charged yet: Region accounting is local
  // until the join commits it.
  EXPECT_EQ(parent.ticks(), 8u);
  EXPECT_THROW(region.charge(1, "region"), Cancelled);
}

TEST(CancelToken, RegionCommitFoldsWatchdogState) {
  CancelToken token(0, 100);
  token.tick(60);  // Stall = 60.
  // A region whose tasks made progress resets the stall at the join.
  token.commit_region(50, /*any_progress=*/true);
  EXPECT_EQ(token.ticks(), 110u);
  EXPECT_FALSE(token.tripped());
  // One with no progress accumulates the whole region into the stall.
  token.commit_region(100, /*any_progress=*/false);
  EXPECT_EQ(token.reason(), CancelReason::kWatchdog);
}

TEST(CancelToken, RegionIndependentOfSiblingInterleaving) {
  // Two tasks of the same region each see only base + their own ticks,
  // so the trip point of task k is a pure function of k.
  CancelToken parent(10);
  parent.tick(5);
  CancelToken::Region a(parent);
  CancelToken::Region b(parent);
  a.tick(4);           // 5 + 4 < 10: alive.
  EXPECT_FALSE(a.tripped());
  b.tick(5);           // 5 + 5 >= 10: tripped regardless of a.
  EXPECT_TRUE(b.tripped());
  EXPECT_FALSE(a.tripped());
}

// ---- Pipeline sweep ----------------------------------------------------------

core::PipelineConfig sweep_config() {
  core::PipelineConfig config;
  config.processors = 8;
  config.machine.size = 8;
  config.machine.noise_sigma = 0.0;
  config.calibration_mode = core::CalibrationMode::kStatic;
  config.solver.max_inner_iterations = 25;
  config.solver.continuation_rounds = 2;
  return config;
}

void check_partial_report(const core::PipelineReport& report,
                          std::uint64_t deadline) {
  // The cancellation must be attributed and accounted.
  EXPECT_EQ(report.cancel_reason, CancelReason::kDeadline);
  EXPECT_GE(report.cancel_ticks, deadline);
  bool saw_cancel_diag = false;
  for (const auto& d : report.diagnostics) {
    if (d.code == degrade::DiagnosticCode::kDeadlineExceeded) {
      saw_cancel_diag = true;
    }
  }
  EXPECT_TRUE(saw_cancel_diag) << "deadline=" << deadline;
  // Whatever the pipeline committed before the trip must be finite and
  // well-formed — a cancelled job may be partial, never poisoned.
  EXPECT_TRUE(std::isfinite(report.allocation.phi));
  EXPECT_GE(report.allocation.phi, 0.0);
  for (const double share : report.allocation.allocation) {
    EXPECT_TRUE(std::isfinite(share));
  }
  if (report.psa) {
    EXPECT_TRUE(std::isfinite(report.psa->finish_time));
    EXPECT_GE(report.psa->finish_time, 0.0);
  }
  EXPECT_TRUE(std::isfinite(report.mpmd.simulated));
  EXPECT_TRUE(std::isfinite(report.serial_seconds));
}

TEST(CancelSweep, EveryBoundaryUnwindsToConsistentPartialReport) {
  const mdg::Mdg graph = core::figure1_example();

  // Baseline: count the run's total charge boundaries.
  core::PipelineConfig config = sweep_config();
  CancelToken counter;
  config.cancel = &counter;
  const core::Compiler baseline_compiler(config);
  const core::PipelineReport baseline =
      baseline_compiler.compile_and_run(graph);
  ASSERT_FALSE(baseline.cancelled);
  const std::uint64_t total = counter.ticks();
  ASSERT_GT(total, 0u);

  // Sweep every boundary (strided when the run is long, so the test
  // stays bounded while still crossing every stage transition).
  const std::uint64_t stride = std::max<std::uint64_t>(1, total / 256);
  std::size_t cancelled_runs = 0;
  for (std::uint64_t deadline = 1; deadline <= total; deadline += stride) {
    CancelToken token(deadline);
    core::PipelineConfig swept = sweep_config();
    swept.cancel = &token;
    const core::Compiler compiler(swept);
    const core::PipelineReport report = compiler.compile_and_run(graph);
    if (!report.cancelled) {
      // Charges after the last checkpoint can leave a tail where the
      // budget is never re-checked; such runs must equal the baseline.
      EXPECT_EQ(report.allocation.phi, baseline.allocation.phi)
          << "deadline=" << deadline;
      continue;
    }
    ++cancelled_runs;
    check_partial_report(report, deadline);
  }
  EXPECT_GT(cancelled_runs, 0u);

  // A cancelled run with the deadline raised past T reproduces the
  // uncancelled result bit-for-bit (cancellation checks are free).
  CancelToken roomy(total * 2);
  core::PipelineConfig with_room = sweep_config();
  with_room.cancel = &roomy;
  const core::Compiler compiler(with_room);
  const core::PipelineReport rerun = compiler.compile_and_run(graph);
  EXPECT_FALSE(rerun.cancelled);
  EXPECT_EQ(rerun.allocation.phi, baseline.allocation.phi);
  EXPECT_EQ(rerun.mpmd.simulated, baseline.mpmd.simulated);
  EXPECT_EQ(counter.ticks(), roomy.ticks());
}

TEST(CancelSweep, ParallelMultiStartCancelsDeterministically) {
  // With multi-start descent the trip tick must not depend on the
  // thread count: same deadline, 1 vs 4 threads, identical partials.
  const mdg::Mdg graph = core::figure1_example();
  const auto run_at = [&](std::size_t threads, std::uint64_t deadline) {
    set_thread_count(threads);
    CancelToken token(deadline);
    core::PipelineConfig config = sweep_config();
    config.solver.num_starts = 4;
    config.cancel = &token;
    const core::Compiler compiler(config);
    const core::PipelineReport report = compiler.compile_and_run(graph);
    set_thread_count(0);
    return std::make_tuple(report.cancelled, report.cancel_ticks,
                           report.allocation.phi, token.ticks());
  };
  for (const std::uint64_t deadline : {5u, 37u, 113u, 419u, 1021u}) {
    EXPECT_EQ(run_at(1, deadline), run_at(4, deadline))
        << "deadline=" << deadline;
  }
}

}  // namespace
}  // namespace paradigm
