// Tests for the multicomputer simulator: partitioning, local memories,
// redistribution planning (Figure-4 message patterns), message timing
// semantics, group-kernel collectives, determinism, noise, and deadlock
// detection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/config.hpp"
#include "sim/memory.hpp"
#include "sim/partition.hpp"
#include "sim/program.hpp"
#include "sim/redistribute.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace paradigm::sim {
namespace {

// ---- Partitioning -----------------------------------------------------------

TEST(Partition, CoversDisjointly) {
  for (const std::size_t total : {7u, 16u, 64u, 100u}) {
    for (const std::size_t parts : {1u, 2u, 3u, 5u, 8u}) {
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (std::size_t i = 0; i < parts; ++i) {
        const IndexRange r = block_range(total, parts, i);
        EXPECT_EQ(r.lo, prev_hi);
        prev_hi = r.hi;
        covered += r.size();
      }
      EXPECT_EQ(prev_hi, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Partition, NestsAcrossPowerOfTwoGroupSizes) {
  // Piece i of 2g pieces is inside piece i/2 of g pieces — the property
  // that makes 1D redistribution produce exactly max(p_i, p_j) messages.
  const std::size_t total = 64;
  for (std::size_t g = 1; g <= 16; g *= 2) {
    for (std::size_t i = 0; i < 2 * g; ++i) {
      const IndexRange fine = block_range(total, 2 * g, i);
      const IndexRange coarse = block_range(total, g, i / 2);
      EXPECT_TRUE(coarse.contains(fine));
    }
  }
}

TEST(Partition, Intersect) {
  EXPECT_EQ(intersect({0, 10}, {5, 20}), (IndexRange{5, 10}));
  EXPECT_TRUE(intersect({0, 5}, {5, 10}).empty());
  EXPECT_TRUE(intersect({8, 9}, {0, 3}).empty());
}

// ---- Machine config ---------------------------------------------------------

TEST(Config, SequentialSeconds) {
  MachineConfig mc;
  EXPECT_NEAR(mc.sequential_seconds(mdg::LoopOp::kMul, 4, 4, 8),
              2.0 * 4 * 4 * 8 * mc.flop_time, 1e-15);
  EXPECT_NEAR(mc.sequential_seconds(mdg::LoopOp::kAdd, 8, 8, 0),
              64 * mc.flop_time, 1e-15);
  EXPECT_NEAR(mc.sequential_seconds(mdg::LoopOp::kInit, 8, 8, 0),
              64 * mc.elem_touch_time, 1e-15);
}

TEST(Config, KernelSecondsAmdahlShape) {
  MachineConfig mc;
  // Doubling the group reduces cost but with diminishing returns, and
  // the cost never falls below the serial part.
  double prev = mc.kernel_seconds(mdg::LoopOp::kMul, 64, 64, 64, 1);
  const double serial =
      mc.mul_timing.serial_fraction *
      mc.sequential_seconds(mdg::LoopOp::kMul, 64, 64, 64);
  for (std::uint32_t g = 2; g <= 64; g *= 2) {
    const double cur = mc.kernel_seconds(mdg::LoopOp::kMul, 64, 64, 64, g);
    EXPECT_LT(cur, prev);
    EXPECT_GT(cur, serial);
    prev = cur;
  }
}

TEST(Config, SyntheticHasNoMachineTiming) {
  MachineConfig mc;
  EXPECT_THROW(mc.kernel_seconds(mdg::LoopOp::kSynthetic, 4, 4, 0, 2),
               Error);
}

// ---- Rank memory ------------------------------------------------------------

TEST(Memory, AllocWriteReadRoundTrip) {
  RankMemory mem;
  const BlockRect rect{{4, 12}, {0, 8}};
  mem.alloc("X", rect);
  const Matrix values = Matrix::deterministic(4, 4, 5);
  mem.write("X", BlockRect{{6, 10}, {2, 6}}, values);
  const Matrix back = mem.read("X", BlockRect{{6, 10}, {2, 6}});
  EXPECT_LT(back.max_abs_diff(values), 1e-15);
}

TEST(Memory, OutOfBlockAccessRejected) {
  RankMemory mem;
  mem.alloc("X", BlockRect{{0, 4}, {0, 4}});
  EXPECT_THROW(mem.read("X", BlockRect{{0, 5}, {0, 4}}), Error);
  EXPECT_THROW(mem.write("X", BlockRect{{0, 4}, {3, 5}}, Matrix(4, 2)),
               Error);
  EXPECT_THROW(mem.read("Y", BlockRect{{0, 1}, {0, 1}}), Error);
}

// ---- Redistribution plans ----------------------------------------------------

TEST(Redistribute, OneDMessageCountIsMaxOfGroupSizes) {
  // Disjoint groups, power-of-two sizes: exactly max(p_i, p_j) messages,
  // each sender sending max/p_i and each receiver receiving max/p_j.
  for (const auto& [pi, pj] : std::vector<std::pair<std::uint32_t,
                                                    std::uint32_t>>{
           {1, 4}, {4, 1}, {2, 8}, {8, 2}, {4, 4}}) {
    std::vector<std::uint32_t> src, dst;
    for (std::uint32_t i = 0; i < pi; ++i) src.push_back(i);
    for (std::uint32_t j = 0; j < pj; ++j) dst.push_back(100 + j);
    const RedistPlan plan = plan_redistribution(
        64, 32, src, Distribution::kRow, dst, Distribution::kRow);
    EXPECT_EQ(plan.messages.size(), std::max(pi, pj)) << pi << "," << pj;
    EXPECT_TRUE(plan.local_pieces.empty());
    EXPECT_EQ(plan.message_bytes(), 64u * 32u * sizeof(double));
  }
}

TEST(Redistribute, TwoDMessageCountIsProduct) {
  for (const auto& [pi, pj] : std::vector<std::pair<std::uint32_t,
                                                    std::uint32_t>>{
           {2, 2}, {2, 4}, {4, 2}, {1, 8}}) {
    std::vector<std::uint32_t> src, dst;
    for (std::uint32_t i = 0; i < pi; ++i) src.push_back(i);
    for (std::uint32_t j = 0; j < pj; ++j) dst.push_back(100 + j);
    const RedistPlan plan = plan_redistribution(
        64, 64, src, Distribution::kRow, dst, Distribution::kCol);
    EXPECT_EQ(plan.messages.size(), pi * pj);
    EXPECT_EQ(plan.message_bytes(), 64u * 64u * sizeof(double));
  }
}

TEST(Redistribute, OverlappingGroupsProduceLocalPieces) {
  // Same group both sides, same distribution: everything is local.
  const std::vector<std::uint32_t> group{0, 1, 2, 3};
  const RedistPlan plan = plan_redistribution(
      32, 32, group, Distribution::kRow, group, Distribution::kRow);
  EXPECT_TRUE(plan.messages.empty());
  EXPECT_EQ(plan.local_pieces.size(), 4u);
  EXPECT_TRUE(is_noop_redistribution(group, Distribution::kRow, group,
                                     Distribution::kRow));
}

TEST(Redistribute, GroupShrinkKeepsOwnerLocalPieces) {
  // 4 ranks -> first 2 ranks: rank 0 keeps rows 0-8 local (it owns rows
  // 0-16 as a destination); rank 1's source rows 8-16 move to rank 0 and
  // ranks 2, 3 forward to rank 1 — three messages total.
  const std::vector<std::uint32_t> src{0, 1, 2, 3};
  const std::vector<std::uint32_t> dst{0, 1};
  const RedistPlan plan = plan_redistribution(
      32, 8, src, Distribution::kRow, dst, Distribution::kRow);
  EXPECT_EQ(plan.local_pieces.size(), 1u);
  EXPECT_EQ(plan.local_pieces[0].src_rank, 0u);
  EXPECT_EQ(plan.messages.size(), 3u);
  std::size_t bytes = plan.message_bytes();
  for (const auto& piece : plan.local_pieces) bytes += piece.rect.bytes();
  EXPECT_EQ(bytes, 32u * 8u * sizeof(double));
}

TEST(Redistribute, NoopDetection) {
  const std::vector<std::uint32_t> a{0, 1};
  const std::vector<std::uint32_t> b{0, 2};
  EXPECT_TRUE(is_noop_redistribution(a, Distribution::kRow, a,
                                     Distribution::kRow));
  EXPECT_FALSE(is_noop_redistribution(a, Distribution::kRow, b,
                                      Distribution::kRow));
  EXPECT_FALSE(is_noop_redistribution(a, Distribution::kRow, a,
                                      Distribution::kCol));
}

// ---- Simulator: message timing ----------------------------------------------

MachineConfig quiet_machine(std::uint32_t size) {
  MachineConfig mc;
  mc.size = size;
  mc.noise_sigma = 0.0;
  return mc;
}

TEST(Simulator, PointToPointTiming) {
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  const BlockRect rect{{0, 16}, {0, 16}};
  program.streams[0].push_back(AllocBlock{"X", rect});
  program.streams[0].push_back(SendBlock{1, 1, "X", rect});
  program.streams[1].push_back(AllocBlock{"Y", rect});
  program.streams[1].push_back(RecvBlock{0, 1, "Y", rect});

  Simulator simulator(mc);
  const SimResult result = simulator.run(program);
  const double bytes = 16.0 * 16.0 * 8.0;
  const double send_t = mc.send_startup + bytes * mc.send_per_byte;
  const double recv_t = mc.recv_startup + bytes * mc.recv_per_byte;
  EXPECT_NEAR(result.rank_clock[0], send_t, 1e-12);
  EXPECT_NEAR(result.rank_clock[1], send_t + mc.net_latency + recv_t,
              1e-12);
  EXPECT_EQ(result.messages, 1u);
  EXPECT_EQ(result.message_bytes, static_cast<std::size_t>(bytes));
}

TEST(Simulator, ReceiveBeforeSendBlocksUntilAvailable) {
  // The receiver posts its recv first (instruction order is per-rank;
  // the simulator must not deadlock, and the receive waits).
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  const BlockRect rect{{0, 4}, {0, 4}};
  program.streams[1].push_back(AllocBlock{"Y", rect});
  program.streams[1].push_back(RecvBlock{0, 9, "Y", rect});
  program.streams[0].push_back(AllocBlock{"X", rect});
  // Sender does some compute first.
  GroupKernel busywork;
  busywork.node = 0;
  busywork.op = mdg::LoopOp::kSynthetic;
  busywork.group = {0};
  busywork.cost_override = 1.0;
  program.streams[0].push_back(busywork);
  program.streams[0].push_back(SendBlock{1, 9, "X", rect});

  Simulator simulator(mc);
  const SimResult result = simulator.run(program);
  const double bytes = 4.0 * 4.0 * 8.0;
  EXPECT_NEAR(result.rank_clock[1],
              1.0 + mc.send_startup + bytes * mc.send_per_byte +
                  mc.net_latency + mc.recv_startup +
                  bytes * mc.recv_per_byte,
              1e-9);
}

TEST(Simulator, DataIntegrityAcrossSend) {
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  const BlockRect rect{{0, 8}, {0, 8}};
  GroupKernel init;
  init.node = 0;
  init.op = mdg::LoopOp::kInit;
  init.output = "X";
  init.out_rows = 8;
  init.out_cols = 8;
  init.init_tag = 42;
  init.group = {0};
  program.streams[0].push_back(init);
  program.streams[0].push_back(SendBlock{1, 1, "X", rect});
  program.streams[1].push_back(AllocBlock{"V", rect});
  program.streams[1].push_back(RecvBlock{0, 1, "V", rect});

  Simulator simulator(mc);
  simulator.run(program);
  const Matrix expected = Matrix::deterministic(8, 8, 42);
  EXPECT_LT(simulator.memory(1).read("V", rect).max_abs_diff(expected),
            1e-15);
}

TEST(Simulator, DeadlockDetected) {
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  const BlockRect rect{{0, 2}, {0, 2}};
  program.streams[0].push_back(AllocBlock{"X", rect});
  program.streams[0].push_back(RecvBlock{1, 1, "X", rect});  // never sent
  Simulator simulator(mc);
  EXPECT_THROW(simulator.run(program), Error);
}

TEST(Simulator, MismatchedRectRejected) {
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  const BlockRect rect{{0, 4}, {0, 4}};
  const BlockRect other{{0, 2}, {0, 2}};
  program.streams[0].push_back(AllocBlock{"X", rect});
  program.streams[0].push_back(SendBlock{1, 1, "X", rect});
  program.streams[1].push_back(AllocBlock{"Y", rect});
  program.streams[1].push_back(RecvBlock{0, 1, "Y", other});
  Simulator simulator(mc);
  EXPECT_THROW(simulator.run(program), Error);
}

// ---- Simulator: group kernels -------------------------------------------------

TEST(Simulator, GroupKernelBarrierWaitsForSlowestMember) {
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  // Rank 1 is delayed by 2 s of busywork before the collective.
  GroupKernel delay;
  delay.node = 7;
  delay.op = mdg::LoopOp::kSynthetic;
  delay.group = {1};
  delay.cost_override = 2.0;
  program.streams[1].push_back(delay);

  GroupKernel collective;
  collective.node = 8;
  collective.op = mdg::LoopOp::kSynthetic;
  collective.group = {0, 1};
  collective.cost_override = 0.5;
  program.streams[0].push_back(collective);
  program.streams[1].push_back(collective);

  Simulator simulator(mc);
  const SimResult result = simulator.run(program);
  EXPECT_NEAR(result.rank_clock[0], 2.5, 1e-12);
  EXPECT_NEAR(result.rank_clock[1], 2.5, 1e-12);
}

TEST(Simulator, DistributedInitMatchesSequential) {
  const MachineConfig mc = quiet_machine(4);
  MpmdProgram program(4);
  GroupKernel init;
  init.node = 0;
  init.op = mdg::LoopOp::kInit;
  init.output = "X";
  init.out_rows = 16;
  init.out_cols = 12;
  init.init_tag = 9;
  init.group = {0, 1, 2, 3};
  for (std::uint32_t r = 0; r < 4; ++r) program.streams[r].push_back(init);

  Simulator simulator(mc);
  simulator.run(program);
  const Matrix whole = simulator.assemble_array("X", 16, 12);
  EXPECT_LT(whole.max_abs_diff(Matrix::deterministic(16, 12, 9)), 1e-15);
}

TEST(Simulator, DistributedAddAndMulMatchSequential) {
  const MachineConfig mc = quiet_machine(4);
  MpmdProgram program(4);
  const std::vector<std::uint32_t> group{0, 1, 2, 3};
  const auto emit = [&](GroupKernel k) {
    for (const std::uint32_t r : group) program.streams[r].push_back(k);
  };
  GroupKernel init_a;
  init_a.node = 0;
  init_a.op = mdg::LoopOp::kInit;
  init_a.output = "A";
  init_a.out_rows = 12;
  init_a.out_cols = 12;
  init_a.init_tag = 1;
  init_a.group = group;
  emit(init_a);
  GroupKernel init_b = init_a;
  init_b.node = 1;
  init_b.output = "B";
  init_b.init_tag = 2;
  emit(init_b);
  GroupKernel add;
  add.node = 2;
  add.op = mdg::LoopOp::kAdd;
  add.inputs = {"A", "B"};
  add.output = "S";
  add.out_rows = 12;
  add.out_cols = 12;
  add.group = group;
  emit(add);
  GroupKernel mul;
  mul.node = 3;
  mul.op = mdg::LoopOp::kMul;
  mul.inputs = {"A", "S"};
  mul.output = "P";
  mul.out_rows = 12;
  mul.out_cols = 12;
  mul.inner = 12;
  mul.group = group;
  emit(mul);

  Simulator simulator(mc);
  simulator.run(program);
  const Matrix a = Matrix::deterministic(12, 12, 1);
  const Matrix b = Matrix::deterministic(12, 12, 2);
  EXPECT_LT(simulator.assemble_array("S", 12, 12).max_abs_diff(a + b),
            1e-14);
  EXPECT_LT(simulator.assemble_array("P", 12, 12).max_abs_diff(a * (a + b)),
            1e-12);
}

// ---- Determinism and noise -----------------------------------------------------

MpmdProgram small_exchange_program() {
  MpmdProgram program(2);
  const BlockRect rect{{0, 32}, {0, 32}};
  GroupKernel init;
  init.node = 0;
  init.op = mdg::LoopOp::kInit;
  init.output = "X";
  init.out_rows = 32;
  init.out_cols = 32;
  init.init_tag = 3;
  init.group = {0};
  program.streams[0].push_back(init);
  program.streams[0].push_back(
      SendBlock{1, 1, "X", BlockRect{{0, 32}, {0, 32}}});
  program.streams[1].push_back(AllocBlock{"Y", rect});
  program.streams[1].push_back(RecvBlock{0, 1, "Y", rect});
  return program;
}

TEST(Simulator, DeterministicForFixedSeed) {
  MachineConfig mc = quiet_machine(2);
  mc.noise_sigma = 0.05;
  mc.noise_seed = 77;
  const MpmdProgram program = small_exchange_program();
  Simulator s1(mc);
  Simulator s2(mc);
  EXPECT_DOUBLE_EQ(s1.run(program).finish_time, s2.run(program).finish_time);
}

TEST(Simulator, NoiseChangesTimingNotData) {
  MachineConfig quiet = quiet_machine(2);
  MachineConfig noisy = quiet;
  noisy.noise_sigma = 0.1;
  noisy.noise_seed = 123;
  const MpmdProgram program = small_exchange_program();
  Simulator sq(quiet);
  Simulator sn(noisy);
  const double tq = sq.run(program).finish_time;
  const double tn = sn.run(program).finish_time;
  EXPECT_NE(tq, tn);
  EXPECT_NEAR(tq, tn, 0.5 * tq);  // noise is mild
  const BlockRect rect{{0, 32}, {0, 32}};
  EXPECT_LT(sq.memory(1).read("Y", rect).max_abs_diff(
                sn.memory(1).read("Y", rect)),
            1e-15);
}

TEST(Simulator, BusyAccountingConsistent) {
  const MachineConfig mc = quiet_machine(2);
  const MpmdProgram program = small_exchange_program();
  Simulator simulator(mc);
  const SimResult result = simulator.run(program);
  double trace_busy = 0.0;
  for (const auto& rank_trace : simulator.trace()) {
    for (const auto& interval : rank_trace) {
      trace_busy += interval.end - interval.start;
    }
  }
  EXPECT_NEAR(result.total_busy, trace_busy, 1e-12);
  EXPECT_LE(result.efficiency(2), 1.0 + 1e-12);
}

TEST(Simulator, AssembleIncompleteArrayThrows) {
  const MachineConfig mc = quiet_machine(2);
  MpmdProgram program(2);
  program.streams[0].push_back(AllocBlock{"X", BlockRect{{0, 4}, {0, 8}}});
  Simulator simulator(mc);
  simulator.run(program);
  EXPECT_THROW(simulator.assemble_array("X", 8, 8), Error);
}

}  // namespace
}  // namespace paradigm::sim
