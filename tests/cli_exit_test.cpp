// Exit-code contract regression for paradigm_cli (DESIGN §11):
//
//   0      clean run; also --help and --version
//   1      hard error
//   2      command-line usage error (unknown flag, malformed value)
//   10+L   valid-but-degraded result at ladder rung L (10..15)
//   20/21/22  service: rejected-or-shed / cancelled / failed
//
// These bands are what scripts and CI key on, so they are locked here
// by invoking the real binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

int run_cli(const std::string& args) {
  const std::string command =
      std::string(PARADIGM_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

std::string write_temp_jobs(const char* name, const std::string& body) {
  const std::string path =
      std::string(::testing::TempDir()) + "cli_exit_" + name + ".jobs";
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(CliExit, HelpIsZero) { EXPECT_EQ(run_cli("--help"), 0); }

TEST(CliExit, VersionIsZero) { EXPECT_EQ(run_cli("--version"), 0); }

TEST(CliExit, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_cli("--definitely-not-a-flag"), 2);
}

TEST(CliExit, MalformedValueIsUsageError) {
  EXPECT_EQ(run_cli("--p=banana"), 2);
}

TEST(CliExit, FlagWithValueIsUsageError) {
  EXPECT_EQ(run_cli("--gantt=yes"), 2);
}

TEST(CliExit, HardErrorIsOne) {
  // Unknown program name is a hard error, not a usage-parse error.
  EXPECT_EQ(run_cli("--program=nope"), 1);
}

TEST(CliExit, MissingJobFileIsOne) {
  EXPECT_EQ(run_cli("--serve=/definitely/missing.jobs"), 1);
}

TEST(CliExit, ServeCleanIsZero) {
  const std::string path =
      write_temp_jobs("clean", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 0);
}

TEST(CliExit, ServeCancelledIs21) {
  const std::string path = write_temp_jobs(
      "cancelled", "job id=a seed=3 nodes=8 p=8 deadline=40\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 21);
}

TEST(CliExit, ServeRejectedIs20) {
  const std::string path = write_temp_jobs(
      "rejected",
      "job id=a seed=3 nodes=8 p=8\njob id=b nodes=4096 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 20);
}

TEST(CliExit, ServeFailedIs22) {
  // p=5 is not a power of two: a hard pipeline failure inside the
  // service maps to 22 (not 1 — the service completed its run).
  const std::string path =
      write_temp_jobs("failed", "job id=a seed=3 nodes=8 p=5\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 22);
}

}  // namespace
