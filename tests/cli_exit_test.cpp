// Exit-code contract regression for paradigm_cli (DESIGN §11/§12):
//
//   0      clean run; also --help and --version
//   1      hard error
//   2      command-line usage error (unknown flag, malformed value,
//          journal misuse, newer journal format version)
//   10+L   valid-but-degraded result at ladder rung L (10..15)
//   20/21/22  service: rejected-or-shed / cancelled / failed
//   23     durability: deterministic injected crash at a journal append
//   24     durability: clean result after salvaging a torn/corrupt
//          journal tail on recovery
//   25     durability: journal quarantined after a storage failure
//          (ENOSPC/EIO/short write/failed fsync) survived its bounded
//          retries — the service fail-stops rather than run non-durably
//   26     memory: a job could not fit its byte budget even at the
//          homogeneous rung (shed at admission or exhausted mid-run),
//          or a real std::bad_alloc escaped the pipeline
//
// These bands are what scripts and CI key on, so they are locked here
// by invoking the real binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "support/wal.hpp"

namespace {

int run_cli(const std::string& args) {
  const std::string command =
      std::string(PARADIGM_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

/// Captures stdout (for the --version format lock).
std::string run_cli_stdout(const std::string& args) {
  const std::string command =
      std::string(PARADIGM_CLI_PATH) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string out;
  char buffer[256];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) out += buffer;
  pclose(pipe);
  return out;
}

std::string write_temp_jobs(const char* name, const std::string& body) {
  const std::string path =
      std::string(::testing::TempDir()) + "cli_exit_" + name + ".jobs";
  std::ofstream out(path);
  out << body;
  return path;
}

/// A fresh journal directory per test (removed up-front, not after, so
/// a failing test leaves its journal behind for inspection).
std::string temp_journal_dir(const char* name) {
  const std::string path =
      std::string(::testing::TempDir()) + "cli_exit_journal_" + name;
  std::filesystem::remove_all(path);
  return path;
}

TEST(CliExit, HelpIsZero) { EXPECT_EQ(run_cli("--help"), 0); }

TEST(CliExit, VersionIsZero) { EXPECT_EQ(run_cli("--version"), 0); }

TEST(CliExit, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_cli("--definitely-not-a-flag"), 2);
}

TEST(CliExit, MalformedValueIsUsageError) {
  EXPECT_EQ(run_cli("--p=banana"), 2);
}

TEST(CliExit, FlagWithValueIsUsageError) {
  EXPECT_EQ(run_cli("--gantt=yes"), 2);
}

TEST(CliExit, HardErrorIsOne) {
  // Unknown program name is a hard error, not a usage-parse error.
  EXPECT_EQ(run_cli("--program=nope"), 1);
}

TEST(CliExit, MissingJobFileIsOne) {
  EXPECT_EQ(run_cli("--serve=/definitely/missing.jobs"), 1);
}

TEST(CliExit, ServeCleanIsZero) {
  const std::string path =
      write_temp_jobs("clean", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 0);
}

TEST(CliExit, ServeCancelledIs21) {
  const std::string path = write_temp_jobs(
      "cancelled", "job id=a seed=3 nodes=8 p=8 deadline=40\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 21);
}

TEST(CliExit, ServeRejectedIs20) {
  const std::string path = write_temp_jobs(
      "rejected",
      "job id=a seed=3 nodes=8 p=8\njob id=b nodes=4096 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 20);
}

TEST(CliExit, ServeFailedIs22) {
  // p=5 is not a power of two: a hard pipeline failure inside the
  // service maps to 22 (not 1 — the service completed its run).
  const std::string path =
      write_temp_jobs("failed", "job id=a seed=3 nodes=8 p=5\n");
  EXPECT_EQ(run_cli("--serve=" + path + " --mode=static --noise=0"), 22);
}

// ---- Durability band (DESIGN §12) -------------------------------------------

TEST(CliExit, VersionPrintsJournalFormat) {
  const std::string out = run_cli_stdout("--version");
  EXPECT_NE(out.find("journal format v" +
                     std::to_string(paradigm::wal::kFormatVersion)),
            std::string::npos)
      << out;
}

TEST(CliExit, InjectedCrashIs23AndRecoverIsZero) {
  const std::string jobs = write_temp_jobs(
      "crash23", "job id=a seed=3 nodes=8 p=8\njob id=b seed=4 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("crash23");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0 --inject-crash=3"),
            23);
  EXPECT_EQ(run_cli("--recover --journal=" + dir +
                    " --mode=static --noise=0"),
            0);
}

TEST(CliExit, TornCrashRecoveryWithSalvageIs24) {
  const std::string jobs =
      write_temp_jobs("salvage24", "job id=a seed=3 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("salvage24");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0 --inject-crash=2 "
                    "--inject-crash-torn"),
            23);
  // The torn record is salvaged away: the run completes cleanly but
  // reports 24, not 0, so the dropped bytes are visible to operators.
  EXPECT_EQ(run_cli("--recover --journal=" + dir +
                    " --mode=static --noise=0"),
            24);
}

TEST(CliExit, RecoverWithoutJournalIsUsage2) {
  EXPECT_EQ(run_cli("--recover --mode=static"), 2);
}

TEST(CliExit, RecoverFromMissingJournalIsUsage2) {
  const std::string dir = temp_journal_dir("missing");
  EXPECT_EQ(run_cli("--recover --journal=" + dir + " --mode=static"), 2);
}

TEST(CliExit, ExistingJournalWithoutRecoverIsUsage2) {
  const std::string jobs =
      write_temp_jobs("rerun", "job id=a seed=3 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("rerun");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0"),
            0);
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0"),
            2);
}

TEST(CliExit, JournalWithoutServeIsUsage2) {
  const std::string dir = temp_journal_dir("noserve");
  EXPECT_EQ(run_cli("--journal=" + dir + " --mode=static"), 2);
}

TEST(CliExit, InjectCrashWithoutJournalIsUsage2) {
  const std::string jobs =
      write_temp_jobs("injnojournal", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --inject-crash=1"), 2);
}

TEST(CliExit, StickyEnospcQuarantinesWith25ThenRecoversCleanly) {
  const std::string jobs = write_temp_jobs(
      "enospc25", "job id=a seed=3 nodes=8 p=8\njob id=b seed=4 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("enospc25");
  // The device "fills up" at the 5th write and stays full: the bounded
  // retries cannot ride it out, the journal quarantines, and the
  // service fail-stops with 25 instead of running non-durably.
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0 --inject-storage-fault=enospc:4"),
            25);
  // ENOSPC is a clean failure (nothing partial hit the disk), so the
  // journal needs no salvage: recovery on a healthy disk exits 0.
  EXPECT_EQ(run_cli("--recover --journal=" + dir + " --mode=static --noise=0"),
            0);
}

TEST(CliExit, StickyShortWriteSelfSalvagesBeforeQuarantine) {
  const std::string jobs = write_temp_jobs(
      "short25", "job id=a seed=3 nodes=8 p=8\njob id=b seed=4 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("short25");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0 --inject-storage-fault=short:4"),
            25);
  // Every failed append — including the final one before quarantine —
  // truncates its own torn tail, so recovery finds a structurally
  // clean journal: exit 0, not the salvage band 24.
  EXPECT_EQ(run_cli("--recover --journal=" + dir + " --mode=static --noise=0"),
            0);
}

TEST(CliExit, FailedFsyncQuarantinesWith25) {
  const std::string jobs =
      write_temp_jobs("sync25", "job id=a seed=3 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("sync25");
  // Sync 0 is the header barrier at create; sync 1 is the first kBatch
  // commit boundary. A failed fsync is never retried (the kernel may
  // have dropped the dirty pages), so this quarantines immediately.
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0 --inject-storage-fault=sync:1"),
            25);
}

TEST(CliExit, SnapshotRenameFaultDegradesToCleanExit) {
  const std::string jobs = write_temp_jobs(
      "rename0", "job id=a seed=3 nodes=8 p=8\njob id=b seed=4 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("rename0");
  // Snapshots are an optimization over journal replay: losing every
  // publish rename degrades (journal stays authoritative), it does not
  // quarantine — the run still exits clean.
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --mode=static --noise=0 --svc-snapshot-every=1"
                    " --inject-storage-fault=rename"),
            0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/journal.wal"));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".wal")
        << "no snapshot may survive a failing publish rename: "
        << entry.path();
  }
}

TEST(CliExit, BadSyncPolicyIsUsage2) {
  EXPECT_EQ(run_cli("--sync-policy=sometimes --mode=static"), 2);
}

TEST(CliExit, NonDefaultSyncPolicyWithoutJournalIsUsage2) {
  const std::string jobs =
      write_temp_jobs("policynj", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --sync-policy=never"
                    " --mode=static --noise=0"),
            2);
  EXPECT_EQ(run_cli("--serve=" + jobs + " --sync-policy=always"
                    " --mode=static --noise=0"),
            2);
}

TEST(CliExit, SyncPolicyNeverWithJournalIsAccepted) {
  const std::string jobs =
      write_temp_jobs("policyok", "job id=a seed=3 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("policyok");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --sync-policy=never --mode=static --noise=0"),
            0);
}

TEST(CliExit, InjectStorageFaultWithoutJournalIsUsage2) {
  const std::string jobs =
      write_temp_jobs("sfnojournal", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs +
                    " --inject-storage-fault=enospc --mode=static"),
            2);
}

TEST(CliExit, MalformedStorageFaultIsUsage2) {
  const std::string jobs =
      write_temp_jobs("sfbad", "job id=a seed=3 nodes=8 p=8\n");
  const std::string dir = temp_journal_dir("sfbad");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --inject-storage-fault=gremlins --mode=static"),
            2);
  EXPECT_EQ(run_cli("--serve=" + jobs + " --journal=" + dir +
                    " --inject-storage-fault=enospc:x --mode=static"),
            2);
}

// ---- Memory band (DESIGN §15) -----------------------------------------------

TEST(CliExit, ImpossibleMemoryBudgetIs26) {
  // 1 KiB fits no job even at the homogeneous rung: the arrival is
  // shed with the structured over-memory outcome and the run
  // fail-stops with the memory band, not the generic rejection band.
  const std::string jobs =
      write_temp_jobs("mem26", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs +
                    " --mode=static --noise=0 --mem-budget=1024"),
            26);
}

TEST(CliExit, GenerousMemoryBudgetIsZero) {
  const std::string jobs =
      write_temp_jobs("memok", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs +
                    " --mode=static --noise=0 --mem-budget=1073741824"),
            0);
}

TEST(CliExit, StickyInjectedOomIs26) {
  // A sticky OOM from the first charge defeats every escalation rung:
  // the structured fail-stop, not a crash.
  const std::string jobs =
      write_temp_jobs("memoomsticky", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs +
                    " --mode=static --noise=0 --mem-budget=1073741824"
                    " --inject-oom=1"),
            26);
}

TEST(CliExit, TransientInjectedOomDegradesInsteadOfFailing) {
  // A one-shot OOM at the first charge: brownout escalation unwinds to
  // the analytic rung and the job still finishes (degraded counts as
  // clean at the service exit level).
  const std::string jobs =
      write_temp_jobs("memoomonce", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs +
                    " --mode=static --noise=0 --mem-budget=1073741824"
                    " --inject-oom=1:1"),
            0);
}

TEST(CliExit, InjectOomWithoutMemBudgetIsUsage2) {
  // Mirrors the --sync-policy gate: an armed plan that would silently
  // do nothing without its enabling flag is a usage error.
  const std::string jobs =
      write_temp_jobs("oomnobudget", "job id=a seed=3 nodes=8 p=8\n");
  EXPECT_EQ(run_cli("--serve=" + jobs + " --inject-oom=1 --mode=static"), 2);
}

TEST(CliExit, MalformedInjectOomIsUsage2) {
  const std::string jobs =
      write_temp_jobs("oombad", "job id=a seed=3 nodes=8 p=8\n");
  const std::string base =
      "--serve=" + jobs + " --mode=static --mem-budget=1048576 ";
  EXPECT_EQ(run_cli(base + "--inject-oom=zero"), 2);
  EXPECT_EQ(run_cli(base + "--inject-oom=0"), 2);  // 1-based index.
  EXPECT_EQ(run_cli(base + "--inject-oom=2:x"), 2);
}

TEST(CliExit, MemBudgetWithoutServeIsUsage2) {
  EXPECT_EQ(run_cli("--mem-budget=1024 --mode=static"), 2);
}

TEST(CliExit, NewerJournalFormatVersionIsUsage2) {
  const std::string dir = temp_journal_dir("newer");
  std::filesystem::create_directories(dir);
  {
    paradigm::wal::Writer w = paradigm::wal::Writer::create(
        dir + "/journal.wal", paradigm::wal::kFormatVersion + 1);
  }
  EXPECT_EQ(run_cli("--recover --journal=" + dir + " --mode=static"), 2);
}

}  // namespace
