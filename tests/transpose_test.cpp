// Tests for the transpose kernel: matrix primitive, distributed
// execution across group layouts, calibration, end-to-end C = A * B^T,
// and text-format round trip.
#include <gtest/gtest.h>

#include "calibrate/training.hpp"
#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "mdg/textio.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"

namespace paradigm {
namespace {

TEST(Transpose, MatrixPrimitive) {
  const Matrix m = Matrix::deterministic(5, 3, 7);
  const Matrix t = m.transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(t.at(c, r), m.at(r, c));
    }
  }
  EXPECT_LT(t.transposed().max_abs_diff(m), 1e-15);
}

TEST(Transpose, DistributedKernelMatchesSequential) {
  for (const mdg::Layout layout : {mdg::Layout::kRow, mdg::Layout::kCol}) {
    sim::MachineConfig mc;
    mc.size = 4;
    mc.noise_sigma = 0.0;
    sim::MpmdProgram program(4);
    const std::vector<std::uint32_t> group{0, 1, 2, 3};
    sim::GroupKernel init;
    init.node = 0;
    init.op = mdg::LoopOp::kInit;
    init.output = "X";
    init.out_rows = 12;
    init.out_cols = 8;
    init.init_tag = 3;
    init.group = group;
    sim::GroupKernel transpose;
    transpose.node = 1;
    transpose.op = mdg::LoopOp::kTranspose;
    transpose.inputs = {"X"};
    transpose.output = "Xt";
    transpose.out_layout = layout;
    transpose.out_rows = 8;
    transpose.out_cols = 12;
    transpose.group = group;
    for (const std::uint32_t r : group) {
      program.streams[r].push_back(init);
      program.streams[r].push_back(transpose);
    }
    sim::Simulator simulator(mc);
    simulator.run(program);
    const Matrix expected =
        Matrix::deterministic(12, 8, 3).transposed();
    EXPECT_LT(
        simulator.assemble_array("Xt", 8, 12).max_abs_diff(expected),
        1e-15)
        << "layout " << static_cast<int>(layout);
  }
}

TEST(Transpose, CalibrationFitsAmdahlCurve) {
  sim::MachineConfig mc;
  mc.size = 16;
  mc.noise_sigma = 0.0;
  calibrate::CalibrationConfig config;
  config.repetitions = 1;
  const calibrate::KernelFit fit = calibrate::calibrate_kernel(
      mc, mdg::LoopOp::kTranspose, 64, 64, 0, config);
  // Transpose is so cheap that the group-sync overhead is a visible
  // fraction of the measurement, so the fit is good but not near-exact.
  EXPECT_GT(fit.fit.r_squared, 0.99);
  const double seq =
      mc.sequential_seconds(mdg::LoopOp::kTranspose, 64, 64, 0);
  EXPECT_NEAR(fit.params.tau, seq, 0.1 * seq);
}

TEST(Transpose, MatmulTransposedEndToEnd) {
  const std::size_t n = 32;
  const mdg::Mdg graph = core::matmul_transposed_mdg(n);
  sim::MachineConfig mc;
  mc.size = 8;
  mc.noise_sigma = 0.0;
  calibrate::CalibrationConfig cc;
  cc.repetitions = 1;
  const cost::CostModel model(
      graph, cost::MachineParams{},
      calibrate::calibrate_for_graph(mc, graph, cc));
  const auto alloc = solver::ConvexAllocator{}.allocate(model, 8.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 8);
  psa.schedule.validate(model);
  const auto generated = codegen::generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  EXPECT_LT(simulator.assemble_array("C", n, n)
                .max_abs_diff(core::matmul_transposed_reference(n)),
            1e-11);
}

TEST(Transpose, TextFormatRoundTrip) {
  const mdg::Mdg graph = core::matmul_transposed_mdg(16);
  const std::string text = mdg::write_mdg(graph);
  EXPECT_NE(text.find("transpose B -> Bt"), std::string::npos);
  const mdg::Mdg round = mdg::parse_mdg(text);
  EXPECT_EQ(mdg::write_mdg(round), text);
}

TEST(Transpose, WrongInputCountRejected) {
  EXPECT_THROW(mdg::parse_mdg(R"(
array X 4 4
array Y 4 4
loop a init -> X
loop t transpose X X -> Y
)"),
               Error);
}

}  // namespace
}  // namespace paradigm
