// Allocation-cache soak (DESIGN §13, `ctest -L soak`): a 10 000-job
// corpus drawn Zipf(1.1)-style from 64 job templates is run through the
// service with the content-addressed cache on and off, at 1 and at 4
// worker threads. The cache must be *invisible* in the ledger — all
// four ledgers byte-identical — while the accounting proves the reuse
// actually happened: at most one pipeline run per distinct template,
// hit-rate at or above the analytic floor (N − K), and same-instant
// duplicates coalesced into their batch leader with per-job ledger
// entries intact. Ledgers of failing runs are archived to
// $PARADIGM_SOAK_ARTIFACT_DIR.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "svc/service.hpp"

namespace paradigm::svc {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kJobs = 10000;
constexpr std::size_t kTemplates = 64;
constexpr double kZipfExponent = 1.1;

/// The 64 job templates the corpus is drawn from. Each template is a
/// distinct (seed, nodes, p) triple, so each has a distinct canonical
/// content digest — the analytic reuse floor below counts templates.
JobSpec template_job(std::size_t rank) {
  JobSpec spec;
  spec.graph = GraphKind::kRandom;
  spec.seed = 5000 + rank;
  spec.nodes = 3 + (rank % 3);
  spec.processors = (rank % 2 == 0) ? 4 : 8;
  spec.arrival = 0;
  return spec;
}

/// Deterministic Zipf(1.1) sampling by inverse CDF over the template
/// ranks: rank r is drawn with probability ∝ (r+1)^-1.1, so a handful
/// of hot templates dominate — the workload shape a result cache is
/// for. The corpus opens with a four-copy burst of the hottest
/// template (one full slot batch of identical, not-yet-cached jobs):
/// coalescing — not the cache — is what must fold those, since within
/// one batch no leader has been inserted yet.
std::vector<JobSpec> zipf_corpus() {
  std::vector<double> cdf(kTemplates);
  double total = 0.0;
  for (std::size_t r = 0; r < kTemplates; ++r) {
    total += std::pow(static_cast<double>(r + 1), -kZipfExponent);
    cdf[r] = total;
  }
  Rng rng(0x21bf5eedULL);
  std::vector<JobSpec> jobs;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    std::size_t rank = 0;
    if (i >= 4) {
      const double u = rng.uniform() * total;
      while (rank + 1 < kTemplates && cdf[rank] < u) ++rank;
    }
    JobSpec spec = template_job(rank);
    spec.id = "z";
    spec.id += std::to_string(i);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

/// Cheap deterministic pipeline settings: the cache-off runs execute
/// all 10 000 pipeline attempts, so each attempt is kept as small as
/// determinism allows. No deadlines, no retries, queue larger than the
/// corpus — every job completes, which makes the reuse accounting
/// exact.
ServiceConfig soak_config(bool cache_on) {
  ServiceConfig config;
  config.pipeline.calibration_mode = core::CalibrationMode::kStatic;
  config.pipeline.machine.size = 8;
  config.pipeline.machine.noise_sigma = 0.0;
  config.pipeline.solver.max_inner_iterations = 6;
  config.pipeline.solver.continuation_rounds = 1;
  config.queue_capacity = kJobs + 1;
  config.slots = 4;
  config.max_retries = 0;
  config.cache.enabled = cache_on;
  config.cache.capacity = 2 * kTemplates;
  return config;
}

ServiceReport run_soak(std::size_t threads, bool cache_on) {
  set_thread_count(threads);
  Service service(soak_config(cache_on));
  for (JobSpec& spec : zipf_corpus()) service.submit(std::move(spec));
  ServiceReport report = service.run();
  set_thread_count(0);
  return report;
}

/// On failure, writes the mismatching ledger next to the reference one
/// in $PARADIGM_SOAK_ARTIFACT_DIR so the divergence can be diffed
/// offline (the CI soak stage archives that directory).
void archive_on_failure(const std::string& tag, const std::string& ledger) {
  const char* artifact_dir = std::getenv("PARADIGM_SOAK_ARTIFACT_DIR");
  if (artifact_dir == nullptr || artifact_dir[0] == '\0') return;
  std::error_code ec;
  fs::create_directories(artifact_dir, ec);
  std::ofstream out(fs::path(artifact_dir) / (tag + ".ledger"));
  out << ledger;
}

/// Every job id must have exactly one terminal ledger line — coalesced
/// duplicates share a solve but never a ledger entry.
void assert_per_job_entries(const std::string& ledger) {
  std::set<std::string> ids;
  std::size_t lines = 0;
  std::istringstream in(ledger);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    std::istringstream fields(line);
    std::string id;
    fields >> id;
    EXPECT_TRUE(ids.insert(id).second) << "duplicate ledger line: " << line;
  }
  EXPECT_EQ(lines, kJobs);
  EXPECT_EQ(ids.size(), kJobs);
}

TEST(CacheSoak, TenThousandJobZipfCorpusHitsFloorAndKeepsLedgerIdentical) {
  const ServiceReport off1 = run_soak(1, false);
  const std::string expected = off1.ledger();
  assert_per_job_entries(expected);
  ASSERT_EQ(off1.completed + off1.degraded, kJobs)
      << "corpus must complete cleanly for the reuse floor to be exact";
  EXPECT_EQ(off1.pipeline_runs, kJobs);
  EXPECT_EQ(off1.cache_hits + off1.cache_misses + off1.coalesced, 0u);

  const struct {
    const char* tag;
    std::size_t threads;
    bool cache_on;
  } variants[] = {
      {"cache-off-t4", 4, false},
      {"cache-on-t1", 1, true},
      {"cache-on-t4", 4, true},
  };
  for (const auto& v : variants) {
    SCOPED_TRACE(v.tag);
    const ServiceReport report = run_soak(v.threads, v.cache_on);
    const std::string ledger = report.ledger();
    EXPECT_EQ(ledger, expected)
        << "the cache must be invisible in the ledger";
    if (ledger != expected) {
      archive_on_failure(v.tag, ledger);
      archive_on_failure("reference-cache-off-t1", expected);
    }
    assert_per_job_entries(ledger);
    if (!v.cache_on) {
      EXPECT_EQ(report.pipeline_runs, kJobs);
      continue;
    }
    // Reuse accounting: at most one solve per distinct template, so
    // the served-from-reuse count has the analytic floor N − K.
    EXPECT_LE(report.pipeline_runs, kTemplates);
    EXPECT_GE(report.cache_hits + report.coalesced, kJobs - kTemplates);
    EXPECT_GT(report.cache_hits, 0u);
    EXPECT_GT(report.coalesced, 0u)
        << "a Zipf(1.1) corpus at 4 slots must coalesce same-instant "
           "duplicates";
    // Every attempt resolves through exactly one tier.
    EXPECT_EQ(report.cache_hits + report.cache_misses, kJobs);
    EXPECT_EQ(report.cache_misses, report.pipeline_runs + report.coalesced);
    EXPECT_EQ(report.warm_starts, 0u) << "warm starts are opt-in";
  }
}

/// Warm starts are opt-in because they change solver trajectories (the
/// ledger is *not* required to match a cold-start run) — but they must
/// stay deterministic: same corpus, same warm-started ledger, at any
/// thread count. Pathological graphs degrade and are retried; attempt
/// 2's content key differs (attempt number) but its *shape* key does
/// not, so the retry warm-starts from the attempt-1 allocation.
TEST(CacheSoak, WarmStartsAreDeterministicAcrossThreadCounts) {
  const auto run_warm = [](std::size_t threads) {
    set_thread_count(threads);
    ServiceConfig config = soak_config(true);
    config.cache.warm_start = true;
    config.max_retries = 1;
    config.retry_min_level = degrade::DegradationLevel::kMultiStartRetry;
    Service service(config);
    for (std::size_t i = 0; i < 24; ++i) {
      JobSpec spec;
      spec.id = "w";
      spec.id += std::to_string(i);
      spec.graph = GraphKind::kPathological;
      spec.seed = i % 12;
      spec.processors = 8;
      service.submit(std::move(spec));
    }
    ServiceReport report = service.run();
    set_thread_count(0);
    return report;
  };
  const ServiceReport serial = run_warm(1);
  const ServiceReport threaded = run_warm(4);
  EXPECT_GT(serial.retries, 0u)
      << "the pathological corpus must degrade-and-retry";
  EXPECT_GT(serial.warm_starts, 0u)
      << "retries must warm-start from the attempt-1 allocation";
  EXPECT_EQ(serial.warm_starts, threaded.warm_starts);
  EXPECT_EQ(serial.ledger(), threaded.ledger());
  if (serial.ledger() != threaded.ledger()) {
    archive_on_failure("warm-t1", serial.ledger());
    archive_on_failure("warm-t4", threaded.ledger());
  }
}

}  // namespace
}  // namespace paradigm::svc
