// Tests for the additional application builders: iterative refinement
// and the multiply+transpose filter chain, through the full pipeline
// with numerical verification.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/programs.hpp"
#include "cost/model.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/allocator.hpp"
#include "support/error.hpp"

namespace paradigm::core {
namespace {

cost::KernelCostTable mirror_table(const sim::MachineConfig& mc,
                                   const mdg::Mdg& graph) {
  cost::KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    const auto key = cost::KernelCostTable::key_for(graph, node);
    if (!table.contains(key)) {
      table.set(key, cost::AmdahlParams{
                         mc.timing_for(key.op).serial_fraction,
                         mc.sequential_seconds(key.op, key.rows, key.cols,
                                               key.inner)});
    }
  }
  return table;
}

Matrix run_and_get(const mdg::Mdg& graph, const std::string& array,
                   std::size_t n, std::uint64_t p) {
  sim::MachineConfig mc;
  mc.size = static_cast<std::uint32_t>(p);
  mc.noise_sigma = 0.0;
  cost::MachineParams mp;
  mp.t_ss = mc.send_startup;
  mp.t_ps = mc.send_per_byte;
  mp.t_sr = mc.recv_startup;
  mp.t_pr = mc.recv_per_byte;
  const cost::CostModel model(graph, mp, mirror_table(mc, graph));
  const auto alloc = solver::ConvexAllocator{}.allocate(
      model, static_cast<double>(p));
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, p);
  psa.schedule.validate(model);
  const auto generated = codegen::generate_mpmd(graph, psa.schedule);
  sim::Simulator simulator(mc);
  simulator.run(generated.program);
  return simulator.assemble_array(array, n, n);
}

TEST(Applications, IterativeStructure) {
  const mdg::Mdg graph = iterative_mdg(16, 4);
  // 3 inits + 4 * (mul + add) + START/STOP.
  EXPECT_EQ(graph.node_count(), 3u + 8u + 2u);
  EXPECT_THROW(iterative_mdg(16, 0), Error);
  EXPECT_THROW(iterative_mdg(1, 2), Error);
}

TEST(Applications, IterativeNumericallyCorrect) {
  const std::size_t n = 16;
  const std::size_t iters = 5;
  const Matrix x = run_and_get(iterative_mdg(n, iters),
                               "X" + std::to_string(iters), n, 8);
  // Values grow with each multiply; compare with a relative tolerance.
  const Matrix ref = iterative_reference(n, iters);
  EXPECT_LT(x.max_abs_diff(ref), 1e-9 * (1.0 + ref.frobenius_norm()));
}

TEST(Applications, FilterChainStructure) {
  const mdg::Mdg graph = filter_chain_mdg(16, 3);
  // 1 + 3 * (init + mul + transpose) + START/STOP.
  EXPECT_EQ(graph.node_count(), 1u + 9u + 2u);
  std::size_t transposes = 0;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop &&
        node.loop.op == mdg::LoopOp::kTranspose) {
      ++transposes;
    }
  }
  EXPECT_EQ(transposes, 3u);
}

TEST(Applications, FilterChainNumericallyCorrect) {
  const std::size_t n = 16;
  const std::size_t stages = 3;
  const Matrix x = run_and_get(filter_chain_mdg(n, stages),
                               "X" + std::to_string(stages), n, 8);
  const Matrix ref = filter_chain_reference(n, stages);
  EXPECT_LT(x.max_abs_diff(ref), 1e-10 * (1.0 + ref.frobenius_norm()));
}

TEST(Applications, IterativeFanOutEdgesSharedInputs) {
  // A and B feed every iteration: init_A must have `iterations` data
  // out-edges, one per multiply.
  const std::size_t iters = 4;
  const mdg::Mdg graph = iterative_mdg(16, iters);
  const mdg::NodeId ia = graph.producer_of("A");
  std::size_t data_edges = 0;
  for (const mdg::EdgeId e : graph.node(ia).out_edges) {
    if (graph.edge(e).total_bytes() > 0) ++data_edges;
  }
  EXPECT_EQ(data_edges, iters);
}

}  // namespace
}  // namespace paradigm::core
