// Unit and property tests for the cost model: posynomial algebra
// (Lemmas 1 and 2), exact cost evaluators against hand-computed values,
// smoothed evaluators against the exact ones and against finite
// differences, and numerical log-convexity of every cost component.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cost/machine.hpp"
#include "cost/model.hpp"
#include "cost/posynomial.hpp"
#include "mdg/mdg.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace paradigm::cost {
namespace {

using mdg::LoopOp;
using mdg::Mdg;
using mdg::NodeId;
using mdg::TransferKind;

// ---- Posynomial algebra ---------------------------------------------------

TEST(Posynomial, ConstantAndMonomialEval) {
  const Posynomial c = Posynomial::constant(3.5);
  EXPECT_DOUBLE_EQ(c.eval(std::vector<double>{}), 3.5);
  const Posynomial m = Posynomial::monomial(2.0, 0, -1.0);
  const std::vector<double> v{4.0};
  EXPECT_DOUBLE_EQ(m.eval(v), 0.5);
}

TEST(Posynomial, AdditionAndProduct) {
  // (1 + 2 v0) * (3 v1^-1) = 3 v1^-1 + 6 v0 v1^-1.
  const Posynomial a =
      Posynomial::constant(1.0) + Posynomial::monomial(2.0, 0, 1.0);
  const Posynomial b = Posynomial::monomial(3.0, 1, -1.0);
  const Posynomial prod = a * b;
  EXPECT_EQ(prod.term_count(), 2u);
  const std::vector<double> v{2.0, 3.0};
  EXPECT_NEAR(prod.eval(v), 3.0 / 3.0 + 6.0 * 2.0 / 3.0, 1e-12);
}

TEST(Posynomial, NegativeCoefficientRejected) {
  EXPECT_THROW(Posynomial::constant(-1.0), Error);
  EXPECT_THROW(Posynomial::monomial(-2.0, 0, 1.0), Error);
}

TEST(Posynomial, ExponentMergingInMonomial2) {
  // Same variable twice: exponents merge.
  const Posynomial m = Posynomial::monomial2(5.0, 0, 1.0, 0, 2.0);
  const std::vector<double> v{2.0};
  EXPECT_DOUBLE_EQ(m.eval(v), 5.0 * 8.0);
}

TEST(Posynomial, EvalLogMatchesEval) {
  const Posynomial p = Posynomial::constant(0.5) +
                       Posynomial::monomial(1.5, 0, -1.0) +
                       Posynomial::monomial2(0.25, 0, 1.0, 1, -2.0);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> vals{rng.uniform(0.5, 8.0),
                                   rng.uniform(0.5, 8.0)};
    const std::vector<double> x{std::log(vals[0]), std::log(vals[1])};
    EXPECT_NEAR(p.eval(vals), p.eval_log(x), 1e-10 * p.eval(vals));
  }
}

TEST(Posynomial, EvalLogGradientMatchesFiniteDifference) {
  const Posynomial p = Posynomial::constant(0.3) +
                       Posynomial::monomial(2.0, 0, -1.0) +
                       Posynomial::monomial2(0.7, 0, 0.5, 1, 1.0);
  const std::vector<double> x{0.4, -0.2};
  std::vector<double> grad(2, 0.0);
  p.eval_log(x, 1.0, grad);
  const double h = 1e-6;
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<double> xp = x;
    std::vector<double> xm = x;
    xp[k] += h;
    xm[k] -= h;
    const double fd = (p.eval_log(xp) - p.eval_log(xm)) / (2 * h);
    EXPECT_NEAR(grad[k], fd, 1e-6);
  }
}

TEST(Posynomial, LogConvexityMidpointProperty) {
  // Every posynomial is log-convex: check midpoints on random segments.
  const Posynomial p = Posynomial::constant(0.1) +
                       Posynomial::monomial(3.0, 0, -1.0) +
                       Posynomial::monomial2(0.5, 0, 2.0, 1, -0.5) +
                       Posynomial::monomial(1.0, 1, 1.0);
  Rng rng(17);
  std::vector<std::vector<double>> xa, xb;
  std::vector<double> fa, fb, fmid;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a{rng.uniform(-2.0, 4.0), rng.uniform(-2.0, 4.0)};
    std::vector<double> b{rng.uniform(-2.0, 4.0), rng.uniform(-2.0, 4.0)};
    std::vector<double> mid{0.5 * (a[0] + b[0]), 0.5 * (a[1] + b[1])};
    fa.push_back(p.eval_log(a));
    fb.push_back(p.eval_log(b));
    fmid.push_back(p.eval_log(mid));
    xa.push_back(std::move(a));
    xb.push_back(std::move(b));
  }
  EXPECT_LE(worst_midpoint_convexity_violation(xa, xb, fa, fb, fmid), 1e-9);
}

// ---- Machine / kernel table ----------------------------------------------

TEST(Machine, PaperDefaults) {
  const MachineParams params = MachineParams::cm5_paper();
  EXPECT_NEAR(params.t_ss, 777.56e-6, 1e-12);
  EXPECT_NEAR(params.t_pr, 426.25e-9, 1e-15);
  EXPECT_DOUBLE_EQ(params.t_n, 0.0);
}

TEST(Machine, AmdahlTime) {
  const AmdahlParams a{0.121, 0.29847};  // MatMul row of Table 1
  EXPECT_NEAR(a.time(1.0), 0.29847, 1e-12);
  // t(p) decreases monotonically towards alpha * tau.
  EXPECT_GT(a.time(2.0), a.time(4.0));
  EXPECT_GT(a.time(64.0), a.alpha * a.tau);
}

TEST(KernelTable, SetGetAndMissing) {
  KernelCostTable table;
  const KernelKey key{LoopOp::kMul, 64, 64, 64};
  EXPECT_FALSE(table.contains(key));
  EXPECT_THROW(table.get(key), Error);
  table.set(key, AmdahlParams{0.121, 0.29847});
  EXPECT_TRUE(table.contains(key));
  EXPECT_NEAR(table.get(key).tau, 0.29847, 1e-12);
}

TEST(KernelTable, InvalidParamsRejected) {
  KernelCostTable table;
  EXPECT_THROW(table.set(KernelKey{}, AmdahlParams{-0.1, 1.0}), Error);
  EXPECT_THROW(table.set(KernelKey{}, AmdahlParams{0.5, -1.0}), Error);
}

// ---- Exact model on a two-node transfer graph -----------------------------

/// producer --X--> consumer, X is rows x cols. Synthetic Amdahl costs.
struct TwoNodeFixture {
  Mdg graph;
  NodeId producer;
  NodeId consumer;
  mdg::EdgeId edge;

  explicit TwoNodeFixture(TransferKind kind, std::size_t rows = 64,
                          std::size_t cols = 64) {
    graph.add_array("X", rows, cols);
    mdg::LoopSpec init;
    init.op = LoopOp::kInit;
    init.output = "X";
    producer = graph.add_loop("producer", init);
    // The transfer kind is derived from the endpoint layouts: giving
    // the consumer the opposite layout makes the edge 2D.
    consumer = graph.add_synthetic("consumer", 0.1, 1.0,
                                   kind == TransferKind::k1D
                                       ? mdg::Layout::kRow
                                       : mdg::Layout::kCol);
    edge = graph.add_dependence(producer, consumer, {"X"});
    graph.finalize();
    PARADIGM_CHECK(graph.edge(edge).transfers.at(0).kind == kind,
                   "fixture kind derivation failed");
  }
};

CostModel make_model(const Mdg& graph, MachineParams machine) {
  KernelCostTable table;
  for (const auto& node : graph.nodes()) {
    if (node.kind == mdg::NodeKind::kLoop &&
        node.loop.op != LoopOp::kSynthetic) {
      table.set(KernelCostTable::key_for(graph, node),
                AmdahlParams{0.05, 0.01});
    }
  }
  return CostModel(graph, machine, std::move(table));
}

TEST(CostModel, OneDTransferCostsMatchEquation2) {
  TwoNodeFixture fx(TransferKind::k1D);
  MachineParams mp;  // paper CM-5 values
  mp.t_n = 2e-9;     // nonzero so the delay term is exercised
  const CostModel model = make_model(fx.graph, mp);
  const double L = 64.0 * 64.0 * 8.0;
  const double pi = 4.0;
  const double pj = 8.0;
  const double mx = 8.0;
  EXPECT_NEAR(model.send_cost(fx.edge, pi, pj),
              (mx / pi) * mp.t_ss + (L / pi) * mp.t_ps, 1e-12);
  EXPECT_NEAR(model.recv_cost(fx.edge, pi, pj),
              (mx / pj) * mp.t_sr + (L / pj) * mp.t_pr, 1e-12);
  EXPECT_NEAR(model.edge_delay(fx.edge, pi, pj), (L / mx) * mp.t_n, 1e-15);
}

TEST(CostModel, TwoDTransferCostsMatchEquation3) {
  TwoNodeFixture fx(TransferKind::k2D);
  MachineParams mp;
  mp.t_n = 2e-9;
  const CostModel model = make_model(fx.graph, mp);
  const double L = 64.0 * 64.0 * 8.0;
  const double pi = 4.0;
  const double pj = 8.0;
  EXPECT_NEAR(model.send_cost(fx.edge, pi, pj),
              pj * mp.t_ss + (L / pi) * mp.t_ps, 1e-12);
  EXPECT_NEAR(model.recv_cost(fx.edge, pi, pj),
              pi * mp.t_sr + (L / pj) * mp.t_pr, 1e-12);
  EXPECT_NEAR(model.edge_delay(fx.edge, pi, pj), (L / (pi * pj)) * mp.t_n,
              1e-15);
}

TEST(CostModel, ZeroByteEdgeIsFree) {
  Mdg g;
  const NodeId a = g.add_synthetic("a", 0.1, 1.0);
  const NodeId b = g.add_synthetic("b", 0.1, 1.0);
  const mdg::EdgeId e = g.add_synthetic_dependence(a, b, 0);
  g.finalize();
  const CostModel model(g, MachineParams{}, KernelCostTable{});
  EXPECT_DOUBLE_EQ(model.send_cost(e, 2.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(model.recv_cost(e, 2.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(model.edge_delay(e, 2.0, 4.0), 0.0);
}

TEST(CostModel, NodeWeightSumsComponents) {
  TwoNodeFixture fx(TransferKind::k1D);
  const CostModel model = make_model(fx.graph, MachineParams{});
  std::vector<double> alloc(fx.graph.node_count(), 1.0);
  alloc[fx.producer] = 4.0;
  alloc[fx.consumer] = 8.0;
  // Producer weight = its processing + send cost (START edge is free).
  const double expected = model.processing_cost(fx.producer, 4.0) +
                          model.send_cost(fx.edge, 4.0, 8.0);
  EXPECT_NEAR(model.node_weight(fx.producer, alloc), expected, 1e-12);
  // Consumer weight = processing + recv cost.
  const double expected_c = model.processing_cost(fx.consumer, 8.0) +
                            model.recv_cost(fx.edge, 4.0, 8.0);
  EXPECT_NEAR(model.node_weight(fx.consumer, alloc), expected_c, 1e-12);
}

TEST(CostModel, AverageAndCriticalPathAndPhi) {
  TwoNodeFixture fx(TransferKind::k1D);
  const CostModel model = make_model(fx.graph, MachineParams{});
  std::vector<double> alloc(fx.graph.node_count(), 2.0);
  const double p = 8.0;
  double area = 0.0;
  for (const auto& node : fx.graph.nodes()) {
    area += model.node_weight(node.id, alloc) * alloc[node.id];
  }
  EXPECT_NEAR(model.average_finish_time(alloc, p), area / p, 1e-12);
  // Critical path: chain START -> producer -> consumer -> STOP with the
  // delay between producer and consumer (t_n = 0 here so no delay).
  const double cp = model.node_weight(fx.producer, alloc) +
                    model.node_weight(fx.consumer, alloc);
  EXPECT_NEAR(model.critical_path_time(alloc), cp, 1e-12);
  EXPECT_NEAR(model.phi(alloc, p),
              std::max(model.average_finish_time(alloc, p), cp), 1e-12);
}

TEST(CostModel, ProcessingCostMonotoneDecreasing) {
  TwoNodeFixture fx(TransferKind::k1D);
  const CostModel model = make_model(fx.graph, MachineParams{});
  double prev = model.processing_cost(fx.consumer, 1.0);
  for (double p = 2.0; p <= 64.0; p *= 2.0) {
    const double cur = model.processing_cost(fx.consumer, p);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(CostModel, MissingKernelEntryThrows) {
  TwoNodeFixture fx(TransferKind::k1D);
  EXPECT_THROW(CostModel(fx.graph, MachineParams{}, KernelCostTable{}),
               Error);
}

// ---- Smoothed evaluators ---------------------------------------------------

TEST(SoftMax, ExactAtMuZero) {
  const SoftMax2 m = soft_max2(1.0, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(m.value, 3.0);
  EXPECT_DOUBLE_EQ(m.wa, 0.0);
  EXPECT_DOUBLE_EQ(m.wb, 1.0);
}

TEST(SoftMax, UpperBoundsMaxAndConverges) {
  for (const double mu : {0.5, 0.1, 0.01}) {
    const SoftMax2 m = soft_max2(1.0, 1.2, mu);
    EXPECT_GE(m.value, 1.2);
    EXPECT_LE(m.value, 1.2 + mu * std::log(2.0) + 1e-12);
    EXPECT_NEAR(m.wa + m.wb, 1.0, 1e-12);
  }
}

class SmoothVsExact : public ::testing::TestWithParam<TransferKind> {};

TEST_P(SmoothVsExact, MuZeroMatchesExactEverywhere) {
  TwoNodeFixture fx(GetParam());
  MachineParams mp;
  mp.t_n = 3e-9;
  const CostModel model = make_model(fx.graph, mp);
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> alloc(fx.graph.node_count());
    std::vector<double> x(fx.graph.node_count());
    for (std::size_t i = 0; i < alloc.size(); ++i) {
      alloc[i] = rng.uniform(1.0, 64.0);
      x[i] = std::log(alloc[i]);
    }
    for (const auto& node : fx.graph.nodes()) {
      const Diff d = model.smooth_node_weight(node.id, x, 0.0);
      EXPECT_NEAR(d.value, model.node_weight(node.id, alloc),
                  1e-9 * (1.0 + d.value))
          << "node " << node.id;
      const Diff a = model.smooth_node_area(node.id, x, 0.0);
      EXPECT_NEAR(a.value,
                  model.node_weight(node.id, alloc) * alloc[node.id],
                  1e-9 * (1.0 + a.value));
    }
    // The 1D delay surrogate (1/sqrt(pi*pj)) upper-bounds the exact
    // delay and agrees when pi == pj; 2D matches exactly.
    for (const auto& edge : fx.graph.edges()) {
      const Diff d = model.smooth_edge_delay(edge.id, x, 0.0);
      const double exact =
          model.edge_delay(edge.id, alloc[edge.src], alloc[edge.dst]);
      EXPECT_GE(d.value, exact - 1e-15);
    }
  }
}

TEST_P(SmoothVsExact, GradientsMatchFiniteDifferences) {
  TwoNodeFixture fx(GetParam());
  MachineParams mp;
  mp.t_n = 3e-9;
  const CostModel model = make_model(fx.graph, mp);
  Rng rng(33);
  const double mu = 0.2;
  const double h = 1e-6;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(fx.graph.node_count());
    for (auto& xi : x) xi = rng.uniform(0.0, 4.0);

    for (const auto& node : fx.graph.nodes()) {
      const Diff d = model.smooth_node_weight(node.id, x, mu);
      std::vector<double> dense(x.size(), 0.0);
      d.grad.scatter(1.0, dense);
      for (std::size_t k = 0; k < x.size(); ++k) {
        std::vector<double> xp = x;
        std::vector<double> xm = x;
        xp[k] += h;
        xm[k] -= h;
        const double fd = (model.smooth_node_weight(node.id, xp, mu).value -
                           model.smooth_node_weight(node.id, xm, mu).value) /
                          (2 * h);
        EXPECT_NEAR(dense[k], fd, 1e-5 * (1.0 + std::abs(fd)))
            << "node " << node.id << " var " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SmoothVsExact,
                         ::testing::Values(TransferKind::k1D,
                                           TransferKind::k2D));

TEST(SmoothCost, NodeWeightLogConvexAlongSegments) {
  TwoNodeFixture fx(TransferKind::k1D);
  MachineParams mp;
  mp.t_n = 3e-9;
  const CostModel model = make_model(fx.graph, mp);
  Rng rng(55);
  const double mu = 0.3;
  // Smoothed node weights are convex in x: midpoint inequality on the
  // plain (not log) values suffices since we need convexity of the
  // objective, which sums these terms.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> a(fx.graph.node_count());
    std::vector<double> b(fx.graph.node_count());
    std::vector<double> mid(fx.graph.node_count());
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = rng.uniform(0.0, 4.0);
      b[i] = rng.uniform(0.0, 4.0);
      mid[i] = 0.5 * (a[i] + b[i]);
    }
    for (const auto& node : fx.graph.nodes()) {
      const double fa = model.smooth_node_weight(node.id, a, mu).value;
      const double fb = model.smooth_node_weight(node.id, b, mu).value;
      const double fm = model.smooth_node_weight(node.id, mid, mu).value;
      EXPECT_LE(fm, 0.5 * (fa + fb) + 1e-9 * (1.0 + fa + fb));
      const double ga = model.smooth_node_area(node.id, a, mu).value;
      const double gb = model.smooth_node_area(node.id, b, mu).value;
      const double gm = model.smooth_node_area(node.id, mid, mu).value;
      EXPECT_LE(gm, 0.5 * (ga + gb) + 1e-9 * (1.0 + ga + gb));
    }
    for (const auto& edge : fx.graph.edges()) {
      const double fa = model.smooth_edge_delay(edge.id, a, mu).value;
      const double fb = model.smooth_edge_delay(edge.id, b, mu).value;
      const double fm = model.smooth_edge_delay(edge.id, mid, mu).value;
      EXPECT_LE(fm, 0.5 * (fa + fb) + 1e-12);
    }
  }
}

// ---- Posynomial forms (Lemma 1 and the 2D part of Lemma 2) ----------------

TEST(Lemmas, ProcessingPosynomialMatchesAmdahl) {
  TwoNodeFixture fx(TransferKind::k1D);
  const CostModel model = make_model(fx.graph, MachineParams{});
  const Posynomial p = model.processing_posynomial(fx.consumer);
  std::vector<double> values(fx.graph.node_count(), 1.0);
  for (double pi = 1.0; pi <= 64.0; pi *= 2.0) {
    values[fx.consumer] = pi;
    EXPECT_NEAR(p.eval(values), model.processing_cost(fx.consumer, pi),
                1e-12);
  }
}

TEST(Lemmas, TwoDPosynomialsMatchExactCosts) {
  TwoNodeFixture fx(TransferKind::k2D);
  MachineParams mp;
  mp.t_n = 2e-9;
  const CostModel model = make_model(fx.graph, mp);
  std::vector<double> values(fx.graph.node_count(), 1.0);
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const double pi = rng.uniform(1.0, 64.0);
    const double pj = rng.uniform(1.0, 64.0);
    values[fx.producer] = pi;
    values[fx.consumer] = pj;
    EXPECT_NEAR(model.send_2d_posynomial(fx.edge).eval(values),
                model.send_cost(fx.edge, pi, pj), 1e-12);
    EXPECT_NEAR(model.recv_2d_posynomial(fx.edge).eval(values),
                model.recv_cost(fx.edge, pi, pj), 1e-12);
    EXPECT_NEAR(model.delay_2d_posynomial(fx.edge).eval(values),
                model.edge_delay(fx.edge, pi, pj), 1e-15);
  }
}

TEST(Lemmas, OneDCostsAreLogConvexNumerically) {
  // The 1D costs contain max(p_i, p_j): not posynomials, but still
  // log-convex (generalized posynomials). Verify the midpoint property
  // of log f(exp x) numerically.
  TwoNodeFixture fx(TransferKind::k1D);
  const CostModel model = make_model(fx.graph, MachineParams{});
  Rng rng(99);
  std::vector<std::vector<double>> xa, xb;
  std::vector<double> fa, fb, fmid;
  for (int trial = 0; trial < 300; ++trial) {
    const double a0 = rng.uniform(0.0, 4.0), a1 = rng.uniform(0.0, 4.0);
    const double b0 = rng.uniform(0.0, 4.0), b1 = rng.uniform(0.0, 4.0);
    const auto f = [&](double x0, double x1) {
      return model.send_cost(fx.edge, std::exp(x0), std::exp(x1)) +
             model.recv_cost(fx.edge, std::exp(x0), std::exp(x1));
    };
    xa.push_back({a0, a1});
    xb.push_back({b0, b1});
    fa.push_back(f(a0, a1));
    fb.push_back(f(b0, b1));
    fmid.push_back(f(0.5 * (a0 + b0), 0.5 * (a1 + b1)));
  }
  EXPECT_LE(worst_midpoint_convexity_violation(xa, xb, fa, fb, fmid), 1e-9);
}

}  // namespace
}  // namespace paradigm::cost
