// Scale tests: the full pipeline on large graphs (hundreds of nodes) —
// the level-2 Strassen expansion and a wide random graph — exercising
// allocation, all scheduler policies, codegen, and simulation at sizes
// well beyond the paper's evaluation.
#include <gtest/gtest.h>

#include "codegen/mpmd.hpp"
#include "core/strassen_multi.hpp"
#include "cost/model.hpp"
#include "mdg/random_mdg.hpp"
#include "sched/bounds.hpp"
#include "sched/psa.hpp"
#include "sim/simulator.hpp"
#include "solver/lbfgs.hpp"
#include "support/rng.hpp"

namespace paradigm {
namespace {

TEST(Scale, Level2StrassenAllPoliciesValidSchedules) {
  const core::StrassenProgram program = core::strassen_program(64, 2);
  EXPECT_GT(program.graph.node_count(), 250u);
  sim::MachineConfig mc;
  mc.size = 32;
  mc.noise_sigma = 0.0;
  cost::KernelCostTable table;
  for (const auto& node : program.graph.nodes()) {
    if (node.kind != mdg::NodeKind::kLoop) continue;
    const auto key = cost::KernelCostTable::key_for(program.graph, node);
    if (!table.contains(key)) {
      table.set(key, cost::AmdahlParams{
                         mc.timing_for(key.op).serial_fraction,
                         mc.sequential_seconds(key.op, key.rows, key.cols,
                                               key.inner)});
    }
  }
  const cost::CostModel model(program.graph, cost::MachineParams{},
                              table);
  // L-BFGS for speed on the big graph.
  const auto alloc = solver::LbfgsAllocator{}.allocate(model, 32.0);
  auto rounded = sched::round_allocation(alloc.allocation, 32);
  rounded = sched::bound_allocation(std::move(rounded),
                                    sched::optimal_processor_bound(32));
  double best = 0.0;
  double worst = 0.0;
  for (const sched::ListPriority policy :
       {sched::ListPriority::kLowestEst,
        sched::ListPriority::kLargestWeight,
        sched::ListPriority::kBottomLevel}) {
    const sched::Schedule schedule =
        sched::list_schedule(model, rounded, 32, policy);
    schedule.validate(model);
    const double makespan = schedule.makespan();
    best = best == 0.0 ? makespan : std::min(best, makespan);
    worst = std::max(worst, makespan);
  }
  // The policies can differ meaningfully on a 280-node graph (priority
  // order matters when many nodes are ready), but all stay within a
  // small constant factor of each other.
  EXPECT_LT(worst, 3.0 * best);
}

TEST(Scale, WideRandomGraphEndToEnd) {
  Rng rng(161803);
  mdg::RandomMdgConfig config;
  config.min_nodes = 120;
  config.max_nodes = 120;
  config.max_width = 16;
  const mdg::Mdg graph = mdg::random_mdg(rng, config);
  const cost::CostModel model(graph, cost::MachineParams{},
                              cost::KernelCostTable{});
  const auto alloc = solver::LbfgsAllocator{}.allocate(model, 64.0);
  const sched::PsaResult psa =
      sched::prioritized_schedule(model, alloc.allocation, 64);
  psa.schedule.validate(model);
  EXPECT_LE(psa.finish_time,
            sched::theorem3_factor(64, psa.pb) * alloc.phi);

  // And the generated program executes to completion on the simulator.
  const auto generated = codegen::generate_mpmd(graph, psa.schedule);
  sim::MachineConfig mc;
  mc.size = 64;
  mc.noise_sigma = 0.0;
  sim::Simulator simulator(mc);
  const sim::SimResult result = simulator.run(generated.program);
  EXPECT_EQ(result.messages, generated.planned_messages);
  EXPECT_NEAR(result.finish_time, psa.finish_time,
              0.4 * psa.finish_time);
}

}  // namespace
}  // namespace paradigm
